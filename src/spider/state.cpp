#include "spider/state.hpp"

#include <stdexcept>

namespace spider::proto {

void MirrorState::apply_announce_in(const SpiderAnnounce& announce, const Digest20& part_digest) {
  Time& high_water = in_high_water_[announce.from_as][announce.route.prefix];
  if (announce.timestamp < high_water) return;  // stale retransmission
  high_water = announce.timestamp;
  bgp::Route route = announce.route;
  // Mirror the import-side provenance so decision-process tie-breaks (MED
  // comparability, neighbor-AS) match the local speaker's view.
  route.learned_from = announce.from_as;
  inputs_[announce.from_as][route.prefix] =
      InputRecord{std::move(route), part_digest, announce.timestamp};
}

void MirrorState::apply_withdraw_in(const SpiderWithdraw& withdraw) {
  Time& high_water = in_high_water_[withdraw.from_as][withdraw.prefix];
  if (withdraw.timestamp < high_water) return;  // stale retransmission
  high_water = withdraw.timestamp;
  auto it = inputs_.find(withdraw.from_as);
  if (it == inputs_.end()) return;
  it->second.erase(withdraw.prefix);
}

void MirrorState::apply_announce_out(const SpiderAnnounce& announce) {
  exports_[announce.to_as][announce.route.prefix] =
      ExportRecord{announce.route, announce.timestamp};
}

void MirrorState::apply_withdraw_out(const SpiderWithdraw& withdraw) {
  auto it = exports_.find(withdraw.to_as);
  if (it == exports_.end()) return;
  it->second.erase(withdraw.prefix);
}

const InputRecord* MirrorState::input(bgp::AsNumber from, const bgp::Prefix& prefix) const {
  auto it = inputs_.find(from);
  if (it == inputs_.end()) return nullptr;
  auto rit = it->second.find(prefix);
  return rit == it->second.end() ? nullptr : &rit->second;
}

const ExportRecord* MirrorState::exported(bgp::AsNumber to, const bgp::Prefix& prefix) const {
  auto it = exports_.find(to);
  if (it == exports_.end()) return nullptr;
  auto rit = it->second.find(prefix);
  return rit == it->second.end() ? nullptr : &rit->second;
}

std::set<bgp::Prefix> MirrorState::all_prefixes() const {
  std::set<bgp::Prefix> out;
  for (const auto& [neighbor, routes] : inputs_) {
    for (const auto& [prefix, record] : routes) out.insert(prefix);
  }
  for (const auto& [neighbor, routes] : exports_) {
    for (const auto& [prefix, record] : routes) out.insert(prefix);
  }
  return out;
}

Bytes MirrorState::serialize() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(inputs_.size()));
  for (const auto& [neighbor, routes] : inputs_) {
    w.u32(neighbor);
    w.u32(static_cast<std::uint32_t>(routes.size()));
    for (const auto& [prefix, record] : routes) {
      record.route.encode(w);
      w.digest(record.part_digest);
      w.i64(record.received_at);
    }
  }
  w.u32(static_cast<std::uint32_t>(in_high_water_.size()));
  for (const auto& [neighbor, marks] : in_high_water_) {
    w.u32(neighbor);
    w.u32(static_cast<std::uint32_t>(marks.size()));
    for (const auto& [prefix, timestamp] : marks) {
      prefix.encode(w);
      w.i64(timestamp);
    }
  }
  w.u32(static_cast<std::uint32_t>(exports_.size()));
  for (const auto& [neighbor, routes] : exports_) {
    w.u32(neighbor);
    w.u32(static_cast<std::uint32_t>(routes.size()));
    for (const auto& [prefix, record] : routes) {
      record.route.encode(w);
      w.i64(record.sent_at);
    }
  }
  return w.take();
}

namespace {

/// Streams (tag, neighbor, count, records...) sections into chunks of
/// roughly the target size.  A section's count must precede its records, so
/// records accumulate in a side buffer and the section closes — and the
/// chunk flushes — whenever the target is reached; a neighbor group that
/// outgrows one chunk simply continues as a fresh section in the next.
class ChunkedStateWriter {
 public:
  explicit ChunkedStateWriter(std::size_t chunk_bytes)
      : target_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

  void begin_group(std::uint8_t tag, std::uint32_t neighbor) {
    tag_ = tag;
    neighbor_ = neighbor;
    group_has_section_ = false;
  }

  void record(const util::ByteWriter& rec) {
    section_.raw(rec.data());
    ++count_;
    if (current_.size() + kSectionHeader + section_.size() >= target_) close_section();
  }

  /// Emits a count-0 section for groups with no records, so an
  /// empty-but-present neighbor survives the round trip (deserialize
  /// preserves the map key exactly as the legacy format does).
  void end_group() {
    if (count_ > 0 || !group_has_section_) close_section();
  }

  std::vector<Bytes> take() {
    if (current_.size() > 0) chunks_.push_back(current_.take());
    return std::move(chunks_);
  }

 private:
  static constexpr std::size_t kSectionHeader = 1 + 4 + 4;  // tag + neighbor + count

  void close_section() {
    current_.u8(tag_);
    current_.u32(neighbor_);
    current_.u32(count_);
    current_.raw(section_.data());
    section_ = util::ByteWriter{};
    count_ = 0;
    group_has_section_ = true;
    if (current_.size() >= target_) chunks_.push_back(current_.take());
  }

  std::size_t target_;
  std::uint8_t tag_ = 0;
  std::uint32_t neighbor_ = 0;
  std::uint32_t count_ = 0;
  bool group_has_section_ = false;
  util::ByteWriter section_;
  util::ByteWriter current_;
  std::vector<Bytes> chunks_;
};

}  // namespace

std::vector<Bytes> MirrorState::serialize_chunked(std::size_t chunk_bytes) const {
  ChunkedStateWriter out(chunk_bytes);
  for (const auto& [neighbor, routes] : inputs_) {
    out.begin_group(0, neighbor);
    for (const auto& [prefix, record] : routes) {
      util::ByteWriter w;
      record.route.encode(w);
      w.digest(record.part_digest);
      w.i64(record.received_at);
      out.record(w);
    }
    out.end_group();
  }
  for (const auto& [neighbor, marks] : in_high_water_) {
    out.begin_group(1, neighbor);
    for (const auto& [prefix, timestamp] : marks) {
      util::ByteWriter w;
      prefix.encode(w);
      w.i64(timestamp);
      out.record(w);
    }
    out.end_group();
  }
  for (const auto& [neighbor, routes] : exports_) {
    out.begin_group(2, neighbor);
    for (const auto& [prefix, record] : routes) {
      util::ByteWriter w;
      record.route.encode(w);
      w.i64(record.sent_at);
      out.record(w);
    }
    out.end_group();
  }
  return out.take();
}

MirrorState MirrorState::deserialize_chunked(const std::vector<Bytes>& chunks) {
  MirrorState state;
  for (const Bytes& chunk : chunks) {
    util::ByteReader r(chunk);
    while (!r.empty()) {
      const std::uint8_t tag = r.u8();
      const bgp::AsNumber neighbor = r.u32();
      switch (tag) {
        case 0: {
          // route (22) + part digest (20) + received_at (8) per record.
          std::uint32_t n = r.check_count(r.u32(), 50, "MirrorState chunked input records");
          state.inputs_[neighbor];
          for (std::uint32_t j = 0; j < n; ++j) {
            InputRecord record;
            record.route = bgp::Route::decode(r);
            record.part_digest = r.digest();
            record.received_at = r.i64();
            state.inputs_[neighbor][record.route.prefix] = std::move(record);
          }
          break;
        }
        case 1: {
          // prefix (5) + timestamp (8) per entry.
          std::uint32_t n = r.check_count(r.u32(), 13, "MirrorState chunked high-water entries");
          state.in_high_water_[neighbor];
          for (std::uint32_t j = 0; j < n; ++j) {
            bgp::Prefix prefix = bgp::Prefix::decode(r);
            state.in_high_water_[neighbor][prefix] = r.i64();
          }
          break;
        }
        case 2: {
          // route (22) + sent_at (8) per record.
          std::uint32_t n = r.check_count(r.u32(), 30, "MirrorState chunked export records");
          state.exports_[neighbor];
          for (std::uint32_t j = 0; j < n; ++j) {
            ExportRecord record;
            record.route = bgp::Route::decode(r);
            record.sent_at = r.i64();
            state.exports_[neighbor][record.route.prefix] = std::move(record);
          }
          break;
        }
        default:
          throw util::DecodeError("MirrorState chunk: bad section tag");
      }
    }
  }
  return state;
}

MirrorState MirrorState::deserialize(ByteSpan data) {
  util::ByteReader r(data);
  MirrorState state;
  std::uint32_t n_in = r.check_count(r.u32(), 8, "MirrorState inputs");
  for (std::uint32_t i = 0; i < n_in; ++i) {
    bgp::AsNumber neighbor = r.u32();
    // route (22) + part digest (20) + received_at (8) per record.
    std::uint32_t n_routes = r.check_count(r.u32(), 50, "MirrorState input routes");
    state.inputs_[neighbor];  // preserve neighbors with zero live routes
    for (std::uint32_t j = 0; j < n_routes; ++j) {
      InputRecord record;
      record.route = bgp::Route::decode(r);
      record.part_digest = r.digest();
      record.received_at = r.i64();
      state.inputs_[neighbor][record.route.prefix] = std::move(record);
    }
  }
  std::uint32_t n_hw_groups = r.check_count(r.u32(), 8, "MirrorState high-water groups");
  for (std::uint32_t i = 0; i < n_hw_groups; ++i) {
    bgp::AsNumber neighbor = r.u32();
    // prefix (5) + timestamp (8) per entry.
    std::uint32_t n_entries = r.check_count(r.u32(), 13, "MirrorState high-water entries");
    state.in_high_water_[neighbor];
    for (std::uint32_t j = 0; j < n_entries; ++j) {
      bgp::Prefix prefix = bgp::Prefix::decode(r);
      state.in_high_water_[neighbor][prefix] = r.i64();
    }
  }
  std::uint32_t n_out = r.check_count(r.u32(), 8, "MirrorState exports");
  for (std::uint32_t i = 0; i < n_out; ++i) {
    bgp::AsNumber neighbor = r.u32();
    // route (22) + sent_at (8) per record.
    std::uint32_t n_routes = r.check_count(r.u32(), 30, "MirrorState export routes");
    state.exports_[neighbor];  // preserve neighbors with zero live routes
    for (std::uint32_t j = 0; j < n_routes; ++j) {
      ExportRecord record;
      record.route = bgp::Route::decode(r);
      record.sent_at = r.i64();
      state.exports_[neighbor][record.route.prefix] = std::move(record);
    }
  }
  r.expect_end();
  return state;
}

std::optional<bgp::Route> elector_choice(const MirrorState& state, const bgp::Prefix& prefix,
                                         const std::set<bgp::AsNumber>& ignored) {
  std::vector<bgp::Route> candidates;
  for (const auto& [neighbor, routes] : state.inputs()) {
    if (ignored.count(neighbor) != 0) continue;
    auto it = routes.find(prefix);
    if (it != routes.end()) candidates.push_back(it->second.route);
  }
  return bgp::decide(candidates);
}

namespace {

/// The bit vector of one present prefix (the per-prefix body shared by the
/// full build and the incremental per-update path).
std::vector<bool> entry_bits(const MirrorState& state, const core::Classifier& classifier,
                             const std::map<bgp::AsNumber, core::Promise>& promises,
                             const std::set<bgp::AsNumber>& ignored_producers,
                             const bgp::Prefix& prefix) {
  const std::uint32_t k = classifier.num_classes();
  const core::ClassId null_class = classifier.classify(std::nullopt);
  std::vector<bool> bits(k, false);
  bits[null_class] = true;  // ⊥ is always available

  for (const auto& [neighbor, routes] : state.inputs()) {
    if (ignored_producers.count(neighbor) != 0) continue;
    auto it = routes.find(prefix);
    if (it != routes.end()) bits[classifier.classify(it->second.route)] = true;
  }

  std::optional<bgp::Route> chosen = elector_choice(state, prefix, ignored_producers);
  const core::ClassId chosen_class = classifier.classify(chosen);
  for (core::ClassId j = 0; j < k; ++j) {
    if (bits[j]) continue;
    for (const auto& [consumer, promise] : promises) {
      if (promise.prefers(chosen_class, j)) {
        bits[j] = true;
        break;
      }
    }
  }
  return bits;
}

}  // namespace

std::vector<std::pair<bgp::Prefix, std::vector<bool>>> build_mtt_entries(
    const MirrorState& state, const core::Classifier& classifier,
    const std::map<bgp::AsNumber, core::Promise>& promises,
    const std::set<bgp::AsNumber>& ignored_producers) {
  std::vector<std::pair<bgp::Prefix, std::vector<bool>>> entries;
  for (const bgp::Prefix& prefix : state.all_prefixes()) {
    entries.emplace_back(prefix,
                         entry_bits(state, classifier, promises, ignored_producers, prefix));
  }
  return entries;
}

std::optional<std::vector<bool>> mtt_entry_for(const MirrorState& state,
                                               const core::Classifier& classifier,
                                               const std::map<bgp::AsNumber, core::Promise>& promises,
                                               const std::set<bgp::AsNumber>& ignored_producers,
                                               const bgp::Prefix& prefix) {
  // Presence mirrors all_prefixes(): any input (even from an ignored
  // producer) or any export keeps the prefix in the table.
  bool present = false;
  for (const auto& [neighbor, routes] : state.inputs()) {
    if (routes.count(prefix) != 0) {
      present = true;
      break;
    }
  }
  if (!present) {
    for (const auto& [neighbor, routes] : state.exports()) {
      if (routes.count(prefix) != 0) {
        present = true;
        break;
      }
    }
  }
  if (!present) return std::nullopt;
  return entry_bits(state, classifier, promises, ignored_producers, prefix);
}

bool same_wire_route(const bgp::Route& a, const bgp::Route& b) {
  return a.prefix == b.prefix && a.as_path == b.as_path && a.origin == b.origin &&
         a.med == b.med && a.communities == b.communities;
}

bgp::Route underlying_route(bgp::Route exported, bgp::AsNumber elector) {
  if (!exported.as_path.empty() && exported.as_path.front() == elector) {
    exported.as_path.erase(exported.as_path.begin());
  }
  return exported;
}

}  // namespace spider::proto

#include "spider/recorder.hpp"

#include <limits>
#include <stdexcept>

#include "crypto/ct.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace spider::proto {

Recorder::Recorder(transport::Endpoint& transport, RecorderConfig config,
                   const crypto::Signer& signer, const core::KeyRegistry& keys,
                   bgp::Speaker& speaker)
    : transport_(transport),
      config_(std::move(config)),
      signer_(signer),
      keys_(keys),
      speaker_(speaker),
      classifier_(config_.num_classes) {
  transport_.set_frame_handler(
      [this](transport::PeerId from, util::ByteSpan frame) { handle_frame(from, frame); });
}

bool announce_timely(Time announce_timestamp, Time local_arrival, const RecorderConfig& config) {
  const Time age = local_arrival - announce_timestamp;
  const Time late_budget =
      config.max_clock_skew + config.ack_deadline * (config.max_retransmits + 1);
  return age >= -config.max_clock_skew && age <= late_budget;
}

void Recorder::add_neighbor(bgp::AsNumber neighbor_as) { neighbors_.insert(neighbor_as); }

void Recorder::set_promise(bgp::AsNumber consumer, core::Promise promise) {
  promises_.insert_or_assign(consumer, std::move(promise));
  // Promises feed every prefix's bit vector, so a change invalidates the
  // whole live tree (detected against committed_promises_version_).
  ++promises_version_;
}

void Recorder::mark_dirty(const bgp::Prefix& prefix) {
  if (config_.incremental_commits) dirty_prefixes_.insert(prefix);
}

Time Recorder::local_now() const { return transport_.now(); }

void Recorder::start(bool schedule_commitments) {
  if (started_) throw std::logic_error("Recorder: already started");
  started_ = true;

  bgp::Speaker::Observer observer;
  observer.on_update_out = [this](bgp::AsNumber to, const bgp::Update& update) {
    observe_update_out(to, update);
  };
  observer.on_route_in = [this](bgp::AsNumber from, const bgp::Route& raw,
                                const std::optional<bgp::Route>& imported) {
    observe_route_in(from, raw, imported);
  };
  observer.on_withdraw_in = [this](bgp::AsNumber from, const bgp::Prefix& prefix) {
    observe_withdraw_in(from, prefix);
  };
  speaker_.set_observer(std::move(observer));

  // Initial full checkpoint: the base of every replay (§6.5).
  log_.add_checkpoint(local_now(), state_.serialize_chunked(config_.checkpoint_chunk_bytes));

  if (config_.checkpoint_interval > 0) {
    // Self-rescheduling periodic checkpoint task.
    struct Rescheduler {
      Recorder* recorder;
      void operator()() const {
        recorder->make_checkpoint();
        recorder->transport_.schedule_in(recorder->config_.checkpoint_interval, *this);
      }
    };
    transport_.schedule_in(config_.checkpoint_interval, Rescheduler{this});
  }

  if (schedule_commitments) schedule_commit();
}

void Recorder::make_checkpoint() {
  log_.add_checkpoint(local_now(), state_.serialize_chunked(config_.checkpoint_chunk_bytes));
}

void Recorder::restore_from(MessageLog log) {
  if (started_) throw std::logic_error("Recorder: restore_from after start");
  log_ = std::move(log);

  const LogCheckpoint* checkpoint = log_.checkpoint_before(std::numeric_limits<Time>::max());
  if (!checkpoint) throw std::invalid_argument("Recorder: log has no checkpoint to restore from");
  state_ = MirrorState::deserialize_chunked(checkpoint->chunks);

  // Replay everything logged after the checkpoint, with exactly the live
  // acceptance rules (a part the pre-crash recorder rejected for timing
  // must not resurface in the restored mirror).
  for (const LogEntry* entry :
       log_.entries_between(checkpoint->timestamp, std::numeric_limits<Time>::max())) {
    core::SignedEnvelope envelope;
    SpiderBatch batch;
    try {
      envelope = core::SignedEnvelope::decode(entry->message);
      batch = SpiderBatch::decode(envelope.payload);
    } catch (const util::DecodeError&) {
      continue;
    }
    for (const SpiderBatch::Part& part : batch.parts) {
      try {
        switch (part.type) {
          case SpiderMsgType::kAnnounce: {
            SpiderAnnounce announce = SpiderAnnounce::decode(part.body);
            if (announce.re_announce) break;
            if (entry->direction == LogDirection::kReceived) {
              if (!announce_timely(announce.timestamp, entry->timestamp, config_)) break;
              state_.apply_announce_in(announce, crypto::digest20(part.body));
            } else {
              state_.apply_announce_out(announce);
            }
            break;
          }
          case SpiderMsgType::kWithdraw: {
            SpiderWithdraw withdraw = SpiderWithdraw::decode(part.body);
            if (entry->direction == LogDirection::kReceived) {
              state_.apply_withdraw_in(withdraw);
            } else {
              state_.apply_withdraw_out(withdraw);
            }
            break;
          }
          case SpiderMsgType::kAck:
          case SpiderMsgType::kCommit:
          case SpiderMsgType::kReAnnounce:
            break;
        }
      } catch (const util::DecodeError&) {
      }
    }
  }

  // The live tree (if any) described the pre-restore mirror; drop it.
  live_tree_valid_ = false;
  dirty_prefixes_.clear();
  SPIDER_OBS_COUNT("spider/restores", 1);
}

void Recorder::schedule_commit() {
  transport_.schedule_in(config_.commit_interval, [this] {
    make_commitment();
    schedule_commit();
  });
}

void Recorder::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  transport_.schedule_in(config_.batch_window, [this] {
    flush_scheduled_ = false;
    flush_batches();
  });
}

core::SignedEnvelope Recorder::sign_now(const SpiderBatch& batch) {
  util::ScopedCpu scope(sign_meter_);
  ++signatures_;
  SPIDER_OBS_COUNT("spider/batches_signed", 1);
  return sign_batch(config_.asn, signer_, batch);
}

bool Recorder::verify_now(const core::SignedEnvelope& envelope) {
  util::ScopedCpu scope(sign_meter_);
  ++verifications_;
  SPIDER_OBS_COUNT("spider/batches_verified", 1);
  return core::check_envelope(envelope, keys_);
}

// ------------------------------------------------------- speaker observer

/// SignedEnvelope{signer, payload = SpiderBatch{{type, body}}, empty
/// signature} in a single pass — byte-identical to the nested encode()s,
/// which the §6.7 synthetic-record path otherwise runs once per mirrored
/// route (three writers and two intermediate copies).
Bytes encode_unsigned_single(std::uint32_t signer, SpiderMsgType type, const Bytes& body) {
  util::ByteWriter w;
  w.u32(signer);
  w.u32(static_cast<std::uint32_t>(9 + body.size()));  // one-part batch payload
  w.u32(1);
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(body);
  w.u32(0);  // no signature: the record is the recorder's own observation
  return w.take();
}

void Recorder::observe_update_out(bgp::AsNumber to, const bgp::Update& update) {
  util::ScopedCpu scope(total_meter_);
  const Time now = local_now();
  for (const bgp::Route& route : update.announced) {
    SpiderAnnounce announce;
    announce.timestamp = now;
    announce.from_as = config_.asn;
    announce.to_as = to;
    announce.route = route;
    // Reference to the underlying imported route (the r' of §6.2).
    const bgp::Route* best = speaker_.loc_rib().find(route.prefix);
    if (best && best->learned_from != 0) {
      announce.underlying_from = best->learned_from;
      if (const InputRecord* input = state_.input(best->learned_from, route.prefix)) {
        announce.underlying_digest = input->part_digest;
      }
    }
    state_.apply_announce_out(announce);
    mark_dirty(route.prefix);
    if (neighbors_.count(to) != 0) {
      queue_part(to, SpiderMsgType::kAnnounce, announce.encode());
    }
  }
  for (const bgp::Prefix& prefix : update.withdrawn) {
    SpiderWithdraw withdraw;
    withdraw.timestamp = now;
    withdraw.from_as = config_.asn;
    withdraw.to_as = to;
    withdraw.prefix = prefix;
    state_.apply_withdraw_out(withdraw);
    mark_dirty(prefix);
    if (neighbors_.count(to) != 0) {
      queue_part(to, SpiderMsgType::kWithdraw, withdraw.encode());
    }
  }
}

void Recorder::observe_route_in(bgp::AsNumber from, const bgp::Route& raw,
                                const std::optional<bgp::Route>& /*imported*/) {
  util::ScopedCpu scope(total_meter_);
  if (neighbors_.count(from) != 0) {
    // BGP's view of a participant neighbor, kept for the §6.2 commit-time
    // cross-check against their signed mirror.  Non-participant routes
    // never enter that check, so the copy stays off the §6.7 fast path.
    bgp_raw_[from][raw.prefix] = raw;
    return;  // participant: input arrives signed
  }

  // Non-participant neighbor (§6.7): mirror the BGP view directly and log a
  // synthetic, unsigned record so replay reproduces the same inputs.
  SpiderAnnounce announce;
  announce.timestamp = local_now();
  announce.from_as = from;
  announce.to_as = config_.asn;
  announce.route = raw;
  Bytes body = announce.encode();
  Digest20 digest = crypto::digest20(body);
  state_.apply_announce_in(announce, digest);
  mark_dirty(raw.prefix);
  ++updates_mirrored_;
  SPIDER_OBS_COUNT("spider/updates_mirrored", 1);

  log_.append(announce.timestamp, LogDirection::kReceived, from,
              encode_unsigned_single(from, SpiderMsgType::kAnnounce, body), 0);
}

void Recorder::observe_withdraw_in(bgp::AsNumber from, const bgp::Prefix& prefix) {
  util::ScopedCpu scope(total_meter_);
  auto raw_it = bgp_raw_.find(from);
  if (raw_it != bgp_raw_.end()) raw_it->second.erase(prefix);
  if (neighbors_.count(from) != 0) return;

  SpiderWithdraw withdraw;
  withdraw.timestamp = local_now();
  withdraw.from_as = from;
  withdraw.to_as = config_.asn;
  withdraw.prefix = prefix;
  Bytes body = withdraw.encode();
  state_.apply_withdraw_in(withdraw);
  mark_dirty(prefix);
  ++updates_mirrored_;
  SPIDER_OBS_COUNT("spider/updates_mirrored", 1);

  log_.append(withdraw.timestamp, LogDirection::kReceived, from,
              encode_unsigned_single(from, SpiderMsgType::kWithdraw, body), 0);
}

// ------------------------------------------------------------- batching

void Recorder::queue_part(bgp::AsNumber neighbor, SpiderMsgType type, Bytes body) {
  pending_parts_[neighbor].push_back({type, std::move(body)});
  schedule_flush();
}

void Recorder::flush_batches() {
  util::ScopedCpu scope(total_meter_);
  for (auto& [neighbor, parts] : pending_parts_) {
    if (parts.empty()) continue;
    SpiderBatch batch;
    batch.parts = std::move(parts);
    parts.clear();

    core::SignedEnvelope envelope = sign_now(batch);
    Bytes wire = envelope.encode();
    SPIDER_OBS_COUNT("spider/batches_flushed", 1);
    SPIDER_OBS_COUNT("spider/wire_bytes_out", wire.size());
    log_.append(local_now(), LogDirection::kSent, neighbor, wire,
                static_cast<std::uint32_t>(envelope.signature.size()));
    Digest20 digest = envelope.digest();
    awaiting_ack_.push_back({digest, local_now(), neighbor, wire, 1});

    if (transport_.send(neighbor, wire)) bytes_sent_ += wire.size();
    schedule_ack_check(digest);
  }
}

void Recorder::schedule_ack_check(const Digest20& digest) {
  // ACK deadline (T_max of §6.2): retransmit a few times, then raise an
  // alarm to be handled out of band.
  transport_.schedule_in(config_.ack_deadline, [this, digest] {
    auto it = std::find_if(awaiting_ack_.begin(), awaiting_ack_.end(),
                           [&](const PendingAck& p) {
                             return crypto::constant_time_equal(p.digest, digest);
                           });
    if (it == awaiting_ack_.end()) return;  // acked in time
    if (it->attempts > config_.max_retransmits) {
      alarm("no ACK from AS" + std::to_string(it->to) + " after " +
            std::to_string(it->attempts) + " transmissions");
      return;
    }
    it->attempts += 1;
    ++retransmissions_;
    SPIDER_OBS_COUNT("spider/retransmissions", 1);
    if (transport_.send(it->to, it->wire)) bytes_sent_ += it->wire.size();
    schedule_ack_check(digest);
  });
}

// ------------------------------------------------------------- receiving

void Recorder::handle_frame(transport::PeerId from, util::ByteSpan payload) {
  util::ScopedCpu scope(total_meter_);
  if (from == transport::kUnknownPeer || neighbors_.count(from) == 0) {
    alarm("message from unknown recorder node");
    return;
  }
  const bgp::AsNumber from_as = from;

  core::SignedEnvelope envelope;
  try {
    envelope = core::SignedEnvelope::decode(payload);
  } catch (const util::DecodeError&) {
    alarm("undecodable envelope from AS" + std::to_string(from_as));
    return;
  }
  if (envelope.signer != from_as || !verify_now(envelope)) {
    alarm("bad signature from AS" + std::to_string(from_as));
    return;
  }
  process_batch(from_as, envelope);
}

void Recorder::process_batch(bgp::AsNumber from, const core::SignedEnvelope& envelope) {
  const Digest20 batch_digest = envelope.digest();
  auto seen_it = seen_batches_.find(batch_digest);
  if (seen_it != seen_batches_.end()) {
    // Retransmission (our ACK was lost) or network duplicate: never
    // re-apply — that would regress the mirror — but repeat the ACK when
    // the original processing sent one.
    SPIDER_OBS_COUNT("spider/duplicate_batches", 1);
    if (seen_it->second) send_ack(from, envelope);
    return;
  }

  SpiderBatch batch;
  try {
    batch = SpiderBatch::decode(envelope.payload);
  } catch (const util::DecodeError&) {
    alarm("undecodable batch from AS" + std::to_string(from));
    return;
  }

  bool needs_ack = false;
  bool logged = false;
  auto log_once = [&] {
    if (logged) return;
    log_.append(local_now(), LogDirection::kReceived, from, envelope.encode(),
                static_cast<std::uint32_t>(envelope.signature.size()));
    logged = true;
  };

  for (std::size_t i = 0; i < batch.parts.size(); ++i) {
    const SpiderBatch::Part& part = batch.parts[i];
    try {
      switch (part.type) {
        case SpiderMsgType::kAnnounce: {
          SpiderAnnounce announce = SpiderAnnounce::decode(part.body);
          if (announce.from_as != from || announce.to_as != config_.asn) {
            alarm("announce with wrong endpoints from AS" + std::to_string(from));
            break;
          }
          if (!announce_timely(announce.timestamp, local_now(), config_)) {
            alarm("announce timestamp outside skew bound from AS" + std::to_string(from));
            break;
          }
          log_once();
          state_.apply_announce_in(announce, crypto::digest20(part.body));
          mark_dirty(announce.route.prefix);
          ++updates_mirrored_;
          SPIDER_OBS_COUNT("spider/updates_mirrored", 1);
          needs_ack = true;
          break;
        }
        case SpiderMsgType::kWithdraw: {
          SpiderWithdraw withdraw = SpiderWithdraw::decode(part.body);
          if (withdraw.from_as != from || withdraw.to_as != config_.asn) {
            alarm("withdraw with wrong endpoints from AS" + std::to_string(from));
            break;
          }
          log_once();
          state_.apply_withdraw_in(withdraw);
          mark_dirty(withdraw.prefix);
          ++updates_mirrored_;
          SPIDER_OBS_COUNT("spider/updates_mirrored", 1);
          needs_ack = true;
          break;
        }
        case SpiderMsgType::kCommit: {
          SpiderCommit commit = SpiderCommit::decode(part.body);
          if (commit.from_as != from) {
            alarm("commit with wrong source from AS" + std::to_string(from));
            break;
          }
          log_once();
          received_commitments_[from][commit.timestamp] = commit;
          needs_ack = true;
          break;
        }
        case SpiderMsgType::kAck: {
          SpiderAck ack = SpiderAck::decode(part.body);
          auto it = std::find_if(awaiting_ack_.begin(), awaiting_ack_.end(),
                                 [&](const PendingAck& pending) {
                                   return crypto::constant_time_equal(pending.digest, ack.message_digest) &&
                                          pending.to == from;
                                 });
          if (it == awaiting_ack_.end()) {
            if (satisfied_acks_.count(ack.message_digest)) {
              // Duplicate of an ACK we already matched (retransmission
              // crossed with the original ACK, or the network duplicated
              // the batch and the receiver's dedup re-ACKed).
              SPIDER_OBS_COUNT("spider/duplicate_acks", 1);
              break;
            }
            alarm("unexpected ACK from AS" + std::to_string(from));
            break;
          }
          log_once();
          satisfied_acks_.insert(it->digest);
          awaiting_ack_.erase(it);
          break;
        }
        case SpiderMsgType::kReAnnounce:
          // Extended verification traffic is handled by the proof
          // generator / checker layer, not the live recorder.
          break;
      }
    } catch (const util::DecodeError&) {
      alarm("undecodable part from AS" + std::to_string(from));
    }
  }

  seen_batches_.emplace(batch_digest, needs_ack);
  if (needs_ack) send_ack(from, envelope);
}

void Recorder::send_ack(bgp::AsNumber to, const core::SignedEnvelope& batch_envelope) {
  SpiderAck ack;
  ack.timestamp = local_now();
  ack.from_as = config_.asn;
  ack.to_as = to;
  ack.message_digest = batch_envelope.digest();

  SpiderBatch batch;
  batch.parts.push_back({SpiderMsgType::kAck, ack.encode()});
  core::SignedEnvelope envelope = sign_now(batch);
  Bytes wire = envelope.encode();
  log_.append(local_now(), LogDirection::kSent, to, wire,
              static_cast<std::uint32_t>(envelope.signature.size()));
  if (transport_.send(to, wire)) bytes_sent_ += wire.size();
}

// ------------------------------------------------------------ commitment

crypto::Seed Recorder::commitment_seed(Time now) const {
  // The commitment's identity in the protocol is its timestamp (the log
  // keys commitments by Time), so deriving the seed from the timestamp ties
  // seed freshness to commitment freshness: a recorder restored from
  // checkpoint+replay commits at strictly later times than anything in its
  // log and therefore can never reuse a seed — the bug a restart-counter
  // scheme had.  With seed_epoch_rounds > 1 the timestamp is quantized to
  // its epoch window, deliberately sharing the seed within the epoch so
  // incremental relabeling can skip untouched subtrees.
  Time epoch = now;
  if (config_.seed_epoch_rounds > 1 && config_.commit_interval > 0) {
    const Time epoch_length =
        config_.commit_interval * static_cast<Time>(config_.seed_epoch_rounds);
    epoch = now - (now % epoch_length);
  }
  return crypto::seed_from_string(config_.seed_salt + "-" + std::to_string(config_.asn) + "-t" +
                                  std::to_string(epoch));
}

Digest20 Recorder::commit_root(const crypto::Seed& seed) {
  util::ScopedCpu mtt_scope(mtt_meter_);
  const crypto::CommitmentPrf prf(seed);

  if (!config_.incremental_commits) {
    auto entries = build_mtt_entries(state_, classifier_, promises_, faults_.ignore_inputs);
    core::Mtt tree = core::Mtt::build(std::move(entries), config_.num_classes);
    tree.compute_labels(prf, config_.commit_threads);
    return tree.root_label();
  }

  // Incremental path.  Global-parameter changes (ignore-input faults,
  // promises) rewrite every prefix's bits, so they force a rebuild; prefix
  // churn flows through apply().  Content-addressed PRF indexing makes
  // every branch produce the identical root a fresh build would.
  const bool params_changed = committed_ignored_ != faults_.ignore_inputs ||
                              committed_promises_version_ != promises_version_;
  if (!live_tree_valid_ || params_changed) {
    auto entries = build_mtt_entries(state_, classifier_, promises_, faults_.ignore_inputs);
    live_tree_ = core::Mtt::build(std::move(entries), config_.num_classes);
    live_tree_.compute_labels(prf, config_.commit_threads);
    live_tree_valid_ = true;
    SPIDER_OBS_COUNT("spider/commit_full_builds", 1);
  } else {
    std::vector<core::MttUpdate> updates;
    updates.reserve(dirty_prefixes_.size());
    for (const bgp::Prefix& prefix : dirty_prefixes_) {
      updates.push_back({prefix, mtt_entry_for(state_, classifier_, promises_,
                                               faults_.ignore_inputs, prefix)});
    }
    if (live_tree_.labels_computed() && crypto::constant_time_equal(live_seed_.span(), seed.span())) {
      // Same seed epoch: only dirty paths rehash.
      live_tree_.apply(updates, prf, config_.commit_threads);
      SPIDER_OBS_COUNT("spider/commit_incremental", 1);
    } else {
      // Seed rotated: the structure survives, the labeling starts over.
      live_tree_.apply(updates);
      live_tree_.compute_labels(prf, config_.commit_threads);
      SPIDER_OBS_COUNT("spider/commit_structure_reuse", 1);
    }
  }
  live_seed_ = seed;
  committed_ignored_ = faults_.ignore_inputs;
  committed_promises_version_ = promises_version_;
  dirty_prefixes_.clear();
  return live_tree_.root_label();
}

const CommitmentRecord& Recorder::make_commitment() {
  util::ScopedCpu scope(total_meter_);
  SPIDER_OBS_SPAN(commit_span, "spider/commitment");
  cross_check_mirror();

  const Time now = local_now();
  CommitmentRecord record;
  record.timestamp = now;
  record.num_classes = config_.num_classes;
  record.seed = commitment_seed(now);
  record.root = commit_root(record.seed);

  log_.record_commitment(record);
  ++commitments_made_;
  SPIDER_OBS_COUNT("spider/commitments_made", 1);

  SpiderCommit commit;
  commit.timestamp = now;
  commit.from_as = config_.asn;
  commit.num_classes = config_.num_classes;
  commit.root = record.root;
  for (bgp::AsNumber neighbor : neighbors_) {
    if (faults_.withhold_commit_from.count(neighbor) != 0) continue;
    SpiderCommit to_send = commit;
    // Equivocation fault: this neighbor gets a different root for the same
    // round (flipping one bit is enough for the cross-check to catch).
    if (faults_.equivocate_to.count(neighbor) != 0) to_send.root[0] ^= 1;
    queue_part(neighbor, SpiderMsgType::kCommit, to_send.encode());
  }
  flush_batches();
  const CommitmentRecord& logged = *log_.commitment_at(record.timestamp);
  if (commitment_hook_) commitment_hook_(logged);
  return logged;
}

void Recorder::cross_check_mirror() {
  // §6.2: the recorder compares the signed messages from each neighbor's
  // recorder against what the local routers got via BGP.
  for (bgp::AsNumber neighbor : neighbors_) {
    auto raw_it = bgp_raw_.find(neighbor);
    const auto* raw = raw_it == bgp_raw_.end() ? nullptr : &raw_it->second;
    auto mirror_it = state_.inputs().find(neighbor);
    const auto* mirror = mirror_it == state_.inputs().end() ? nullptr : &mirror_it->second;
    if (!raw && !mirror) continue;
    if (raw && mirror) {
      for (const auto& [prefix, route] : *raw) {
        auto m = mirror->find(prefix);
        // Compare the wire-visible attributes; learned_from/local_pref are
        // import-side annotations and legitimately differ.
        if (m != mirror->end() &&
            (m->second.route.as_path != route.as_path || m->second.route.med != route.med ||
             m->second.route.origin != route.origin ||
             m->second.route.communities != route.communities)) {
          alarm("mirror mismatch with AS" + std::to_string(neighbor) + " for " + prefix.str());
        }
      }
    }
  }
}

void Recorder::alarm(std::string what) {
  SPIDER_OBS_COUNT("spider/alarms", 1);
  alarms_.push_back(std::move(what));
}

std::map<bgp::Prefix, bgp::Route> Recorder::my_exports_to(bgp::AsNumber neighbor) const {
  std::map<bgp::Prefix, bgp::Route> out;
  auto it = state_.exports().find(neighbor);
  if (it == state_.exports().end()) return out;
  for (const auto& [prefix, record] : it->second) out.emplace(prefix, record.route);
  return out;
}

std::map<bgp::Prefix, bgp::Route> Recorder::my_imports_from(bgp::AsNumber neighbor) const {
  std::map<bgp::Prefix, bgp::Route> out;
  auto it = state_.inputs().find(neighbor);
  if (it == state_.inputs().end()) return out;
  for (const auto& [prefix, record] : it->second) out.emplace(prefix, record.route);
  return out;
}

namespace {

/// Scans the log backwards for the newest part satisfying `match`.
template <typename Match>
std::optional<MessageQuote> find_part(const MessageLog& log, LogDirection direction,
                                      bgp::AsNumber peer, Time until, Match&& match) {
  const auto& entries = log.entries();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (it->direction != direction || it->peer_as != peer || it->timestamp > until) continue;
    core::SignedEnvelope envelope;
    SpiderBatch batch;
    try {
      envelope = core::SignedEnvelope::decode(it->message);
      batch = SpiderBatch::decode(envelope.payload);
    } catch (const util::DecodeError&) {
      continue;
    }
    for (std::uint32_t part = 0; part < batch.parts.size(); ++part) {
      if (match(batch.parts[part])) {
        return MessageQuote{envelope, part};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<MessageQuote> Recorder::find_announce_quote(LogDirection direction,
                                                          bgp::AsNumber peer,
                                                          const bgp::Prefix& prefix,
                                                          Time until) const {
  return find_part(log_, direction, peer, until, [&](const SpiderBatch::Part& part) {
    if (part.type != SpiderMsgType::kAnnounce) return false;
    try {
      return SpiderAnnounce::decode(part.body).route.prefix == prefix;
    } catch (const util::DecodeError&) {
      return false;
    }
  });
}

std::optional<MessageQuote> Recorder::find_withdraw_quote(LogDirection direction,
                                                          bgp::AsNumber peer,
                                                          const bgp::Prefix& prefix,
                                                          Time until) const {
  return find_part(log_, direction, peer, until, [&](const SpiderBatch::Part& part) {
    if (part.type != SpiderMsgType::kWithdraw) return false;
    try {
      return SpiderWithdraw::decode(part.body).prefix == prefix;
    } catch (const util::DecodeError&) {
      return false;
    }
  });
}

std::optional<core::SignedEnvelope> Recorder::find_ack_for(const Digest20& batch_digest) const {
  for (auto it = log_.entries().rbegin(); it != log_.entries().rend(); ++it) {
    if (it->direction != LogDirection::kReceived) continue;
    core::SignedEnvelope envelope;
    SpiderBatch batch;
    try {
      envelope = core::SignedEnvelope::decode(it->message);
      batch = SpiderBatch::decode(envelope.payload);
    } catch (const util::DecodeError&) {
      continue;
    }
    for (const SpiderBatch::Part& part : batch.parts) {
      if (part.type != SpiderMsgType::kAck) continue;
      try {
        if (crypto::constant_time_equal(SpiderAck::decode(part.body).message_digest,
                                        batch_digest)) {
          return envelope;
        }
      } catch (const util::DecodeError&) {
      }
    }
  }
  return std::nullopt;
}

}  // namespace spider::proto

// Experiment harness: the paper's evaluation topology (Figure 5) built on
// the in-process simulator — 10 ASes, each with a BGP speaker and a SPIDeR
// recorder, a RouteViews-style trace injected at AS 2, and AS 5 (five
// neighbors) as the AS under measurement.
//
// Speakers and recorders get *separate* links so BGP traffic and SPIDeR
// traffic are measured independently (the §7.6 bandwidth experiment).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "bgp/speaker.hpp"
#include "core/vpref.hpp"
#include "crypto/rsa.hpp"
#include "netsim/sim.hpp"
#include "spider/recorder.hpp"
#include "trace/routeviews.hpp"
#include "transport/netsim_transport.hpp"

namespace spider::proto {

struct DeploymentConfig {
  std::uint32_t num_classes = 50;
  Time commit_interval = 60 * netsim::kMicrosPerSecond;
  /// Which ASes generate commitments (the paper measures AS 5).
  std::set<bgp::AsNumber> commit_ases = {5};
  unsigned commit_threads = 1;
  /// RSA-1024 as in the paper, or the fast keyed-hash scheme for tests.
  enum class SignScheme { kHash, kRsa } scheme = SignScheme::kHash;
  Time link_latency = 2'000;  // 2 ms
  bgp::AsNumber trace_peer = 1000;
  Time batch_window = 50'000;
  Time delta = 5 * netsim::kMicrosPerSecond;
  /// Forwarded to RecorderConfig (see recorder.hpp for the semantics).
  bool incremental_commits = false;
  unsigned seed_epoch_rounds = 1;
};

class Fig5Deployment {
 public:
  explicit Fig5Deployment(DeploymentConfig config);

  /// The AS numbers (1..10) and the AS-level edges of Figure 5.
  static const std::vector<bgp::AsNumber>& ases();
  static const std::vector<std::pair<bgp::AsNumber, bgp::AsNumber>>& edges();
  std::vector<bgp::AsNumber> neighbors_of(bgp::AsNumber asn) const;

  netsim::Simulator& sim() { return sim_; }
  bgp::Speaker& speaker(bgp::AsNumber asn) { return *speakers_.at(asn); }
  Recorder& recorder(bgp::AsNumber asn) { return *recorders_.at(asn); }
  const core::KeyRegistry& keys() const { return keys_; }
  const DeploymentConfig& config() const { return config_; }
  /// The simulator node carrying `asn`'s recorder traffic (its
  /// NetsimTransport endpoint) — the hook the chaos fault plane targets.
  netsim::NodeId recorder_node(bgp::AsNumber asn) const { return recorder_nodes_.at(asn); }

  /// Injects the RIB snapshot at AS 2 gradually over `setup_duration`
  /// (the paper's 30-minute setup period) and runs the simulator to its
  /// end.  Returns the simulated time at which the replay period begins.
  Time run_setup(const trace::RouteViewsTrace& trace, Time setup_duration);

  /// Replays the trace's update events (relative to `start`) and runs the
  /// simulator until `start + trace duration + slack`.
  void run_replay(const trace::RouteViewsTrace& trace, Time start, Time slack);

  /// Total bytes exchanged on the BGP links adjacent to `asn`.
  std::uint64_t bgp_bytes(bgp::AsNumber asn) const;
  /// Total bytes exchanged on the SPIDeR links adjacent to `asn`.
  std::uint64_t spider_bytes(bgp::AsNumber asn) const;

 private:
  DeploymentConfig config_;
  netsim::Simulator sim_;
  core::KeyRegistry keys_;
  std::map<bgp::AsNumber, std::unique_ptr<crypto::Signer>> signers_;
  std::map<bgp::AsNumber, std::unique_ptr<bgp::Speaker>> speakers_;
  std::map<bgp::AsNumber, std::unique_ptr<transport::NetsimTransport>> transports_;
  std::map<bgp::AsNumber, std::unique_ptr<Recorder>> recorders_;
  std::map<bgp::AsNumber, netsim::NodeId> speaker_nodes_;
  std::map<bgp::AsNumber, netsim::NodeId> recorder_nodes_;
};

}  // namespace spider::proto

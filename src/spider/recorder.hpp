// The SPIDeR recorder (paper §6.1-6.2, §6.5).
//
// One recorder runs per AS, beside the BGP speaker.  It:
//   * mirrors the speaker's routing state by observing the BGP message
//     flow (the paper's iBGP/eBGP tap);
//   * re-announces every UPDATE to the recorders of adjacent ASes with
//     signatures, batching messages Nagle-style so bursts share one
//     signature;
//   * acknowledges every signed batch it receives and raises an alarm when
//     an expected ACK never arrives or mirrored state disagrees with BGP;
//   * appends everything to a tamper-evident log with periodic state
//     checkpoints; and
//   * periodically builds the MTT over its mirrored state and broadcasts
//     the signed commitment (storing only the CSPRNG seed).
//
// Routes learned from neighbors that do not run SPIDeR (e.g. the
// RouteViews trace peer) are logged from the local BGP view instead — the
// incremental-deployment story of §6.7.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bgp/speaker.hpp"
#include "core/mtt.hpp"
#include "core/promise.hpp"
#include "crypto/rsa.hpp"
#include "spider/log.hpp"
#include "spider/messages.hpp"
#include "spider/state.hpp"
#include "transport/transport.hpp"
#include "util/timers.hpp"

namespace spider::proto {

struct RecorderConfig {
  bgp::AsNumber asn = 0;
  std::uint32_t num_classes = 50;
  /// Commitments are generated every commit_interval (paper: 60 s).
  Time commit_interval = 60 * netsim::kMicrosPerSecond;
  /// Outgoing messages are batched and signed once per window (§6.2).
  Time batch_window = 50'000;  // 50 ms
  /// ACKs must arrive within this deadline or the batch is retransmitted;
  /// after max_retransmits the recorder raises an alarm (T_max of §6.2:
  /// "If a router fails to acknowledge m after some time T_max, even after
  /// several retransmissions, the sender raises an alarm").
  Time ack_deadline = 2 * netsim::kMicrosPerSecond;
  int max_retransmits = 3;
  /// Additional full checkpoints every this often; 0 = only the initial
  /// one (§6.5: "optionally some additional checkpoints").
  Time checkpoint_interval = 0;
  /// Target size of one streamed checkpoint chunk (see
  /// MirrorState::serialize_chunked): full-RIB checkpoints are written and
  /// restored without ever building a contiguous state buffer.
  std::size_t checkpoint_chunk_bytes = 1 << 20;
  /// Received timestamps must be within this skew of the local clock.
  Time max_clock_skew = 5 * netsim::kMicrosPerSecond;
  /// Input-selection window for loose synchronization (δ of §6.4).
  Time delta = 5 * netsim::kMicrosPerSecond;
  /// Labeling threads (c of §7.1).
  unsigned commit_threads = 1;
  /// Secret salt for per-commitment seeds (deterministic in tests).
  // spider-taint: secret
  std::string seed_salt = "spider-seed";
  /// Keep the MTT alive across rounds and apply only changed prefixes
  /// instead of rebuilding from the full mirror every commit.  The tree
  /// structure always survives; labels additionally survive within a seed
  /// epoch (below), making per-round cost O(churn · depth) rather than
  /// O(table).  Roots are bit-identical to a full rebuild either way
  /// (content-addressed PRF indexing), so checkpoint+replay reconstruction
  /// needs no knowledge of which mode produced a commitment.
  bool incremental_commits = false;
  /// Rounds per commitment-seed epoch.  1 (default) derives a fresh seed
  /// for every commitment timestamp — the paper's per-round unlinkability —
  /// which limits incremental reuse to the tree structure (every label
  /// still rehashes under the new seed).  Values > 1 share one seed across
  /// a wall-clock epoch of seed_epoch_rounds * commit_interval, letting
  /// within-epoch rounds relabel only dirty paths.  Documented privacy
  /// tradeoff (DESIGN.md): an observer comparing two same-epoch
  /// commitments learns which subtrees changed between them, though never
  /// the bit values themselves.
  unsigned seed_epoch_rounds = 1;
};

/// §6.4 acceptance window for a received announce's sender timestamp.
/// Asymmetric on purpose: a future-dated timestamp is bounded by the
/// clock-skew assumption alone (a lying clock could otherwise pre-date its
/// way past the mirror's last-writer-wins input ordering), while a
/// past-dated one is tolerated up to skew plus the full retransmit budget
/// — a batch that needed every retransmission arrives late by design, and
/// stale timestamps are harmless anyway (the high-water guard ignores
/// them).  The live recorder and checkpoint+replay reconstruction apply
/// this same predicate (with the logged arrival time standing in for
/// local_now), so the two paths cannot diverge on acceptance.
bool announce_timely(Time announce_timestamp, Time local_arrival, const RecorderConfig& config);

/// The recorder is written against the transport plane (transport.hpp),
/// never the simulator: the same protocol object runs inside the
/// deterministic netsim (NetsimTransport, tests and the chaos matrix) and
/// as a real process over TCP (TcpTransport, tools/spider_node).
class Recorder {
 public:
  /// Elector-side misbehaviors, mirroring §7.4's fault injection.  A
  /// faulty AS controls its own recorder, so the recorder must be able to
  /// lie in the same way its BGP configuration does.
  struct Faults {
    /// "Overaggressive filter": build commitments as if these neighbors
    /// had sent nothing.
    std::set<bgp::AsNumber> ignore_inputs;
    /// Equivocation (§4.5): the commitment broadcast to these neighbors
    /// carries a root with one bit flipped, so the same round has two
    /// different roots in circulation (caught by the cross-check).
    std::set<bgp::AsNumber> equivocate_to;
    /// Withhold the commitment broadcast from these neighbors entirely
    /// (caught as a missing message during verification).
    std::set<bgp::AsNumber> withhold_commit_from;
  };

  /// The recorder installs itself as `transport`'s frame handler; the
  /// endpoint must outlive it.  Peer routing (where a neighbor AS actually
  /// lives) is the backend's concern — see NetsimTransport::register_peer
  /// and TcpTransport::connect_peer.
  Recorder(transport::Endpoint& transport, RecorderConfig config, const crypto::Signer& signer,
           const core::KeyRegistry& keys, bgp::Speaker& speaker);

  /// Declares that `neighbor_as` runs a SPIDeR recorder we exchange signed
  /// batches with.
  void add_neighbor(bgp::AsNumber neighbor_as);

  /// The promise made to a consumer neighbor (the ≤_j of VPref).
  void set_promise(bgp::AsNumber consumer, core::Promise promise);

  /// Installs the speaker observer, logs the initial checkpoint, and
  /// schedules batch flushing (+ periodic commitments when enabled).
  void start(bool schedule_commitments = true);

  /// Crash-restart path (§6.5): adopts `log` as this recorder's log and
  /// rebuilds the mirrored state from its latest checkpoint plus replay of
  /// the messages logged after it — the same acceptance rules as live
  /// processing, so the restored mirror equals the pre-crash one.  Must be
  /// called before start().  Commitment seeds are derived from commitment
  /// timestamps, so a restored recorder can never re-derive a seed that a
  /// pre-crash commitment already used (the restored clock is strictly
  /// ahead of every logged commitment).
  void restore_from(MessageLog log);

  /// Delivery of one frame from the transport (installed as the endpoint's
  /// frame handler by the constructor; public so tests and process runners
  /// can feed frames directly).
  void handle_frame(transport::PeerId from, util::ByteSpan payload);

  /// Invoked after every commitment this recorder logs (process runners
  /// push commit notifications to subscribers from here).  Optional.
  void set_commitment_hook(std::function<void(const CommitmentRecord&)> hook) {
    commitment_hook_ = std::move(hook);
  }

  /// Builds and broadcasts a commitment over the current mirrored state;
  /// returns the log record.  Normally driven by the commit timer.
  const CommitmentRecord& make_commitment();

  /// Flushes pending outgoing batches immediately (normally timer-driven).
  void flush_batches();

  // ------------------------------------------------------------- accessors
  const RecorderConfig& config() const { return config_; }
  const MirrorState& state() const { return state_; }
  const MessageLog& log() const { return log_; }
  MessageLog& mutable_log() { return log_; }
  const core::PathLengthClassifier& classifier() const { return classifier_; }
  const std::map<bgp::AsNumber, core::Promise>& promises() const { return promises_; }
  Faults& faults() { return faults_; }
  const Faults& faults() const { return faults_; }
  const crypto::Signer& signer() const { return signer_; }

  /// Commitments received from each neighbor, by commitment timestamp.
  const std::map<bgp::AsNumber, std::map<Time, SpiderCommit>>& received_commitments() const {
    return received_commitments_;
  }

  /// Raised alarms (missing ACKs, mirror/BGP mismatches, bad signatures).
  const std::vector<std::string>& alarms() const { return alarms_; }

  /// What this AS currently believes it is exporting to / importing from a
  /// neighbor — the checker's ground truth when verifying that neighbor.
  std::map<bgp::Prefix, bgp::Route> my_exports_to(bgp::AsNumber neighbor) const;
  std::map<bgp::Prefix, bgp::Route> my_imports_from(bgp::AsNumber neighbor) const;

  /// Writes a full checkpoint of the mirrored state into the log now.
  void make_checkpoint();

  /// Discards log entries, checkpoints and commitments older than `cutoff`
  /// (the retention policy of §6.5; R days in the paper).
  void enforce_retention(Time cutoff) { log_.prune_before(cutoff); }

  /// Evidence construction (§6.3): the latest quotable announce (or
  /// withdraw) exchanged with `peer` for `prefix` at or before `until`.
  /// `direction` selects sent (my export) vs received (their export).
  std::optional<MessageQuote> find_announce_quote(LogDirection direction, bgp::AsNumber peer,
                                                  const bgp::Prefix& prefix, Time until) const;
  std::optional<MessageQuote> find_withdraw_quote(LogDirection direction, bgp::AsNumber peer,
                                                  const bgp::Prefix& prefix, Time until) const;

  /// The peer's ACK covering the batch with this digest, if logged.
  std::optional<core::SignedEnvelope> find_ack_for(const Digest20& batch_digest) const;

  // ----------------------------------------------------------- statistics
  std::uint64_t signatures_performed() const { return signatures_; }
  std::uint64_t verifications_performed() const { return verifications_; }
  std::uint64_t updates_mirrored() const { return updates_mirrored_; }
  std::uint64_t commitments_made() const { return commitments_made_; }
  double sign_cpu_seconds() const { return sign_meter_.total(); }
  double mtt_cpu_seconds() const { return mtt_meter_.total(); }
  double total_cpu_seconds() const { return total_meter_.total(); }
  /// Total bytes this recorder has sent over SPIDeR links.
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void observe_update_out(bgp::AsNumber to, const bgp::Update& update);
  void observe_route_in(bgp::AsNumber from, const bgp::Route& raw,
                        const std::optional<bgp::Route>& imported);
  void observe_withdraw_in(bgp::AsNumber from, const bgp::Prefix& prefix);

  void queue_part(bgp::AsNumber neighbor, SpiderMsgType type, Bytes body);
  void schedule_flush();
  void schedule_commit();
  void process_batch(bgp::AsNumber from, const core::SignedEnvelope& envelope);
  void send_ack(bgp::AsNumber to, const core::SignedEnvelope& batch_envelope);
  void cross_check_mirror();
  void alarm(std::string what);

  core::SignedEnvelope sign_now(const SpiderBatch& batch);
  bool verify_now(const core::SignedEnvelope& envelope);

  Time local_now() const;

  /// Seed for the commitment stamped `now`: a function of the timestamp
  /// (or its epoch window when seed_epoch_rounds > 1), never of a counter,
  /// so checkpoint restore cannot replay an already-used seed.
  crypto::Seed commitment_seed(Time now) const;
  /// Marks a prefix changed since the last commitment (incremental mode).
  void mark_dirty(const bgp::Prefix& prefix);
  /// The MTT root over the current mirror, via the configured path (full
  /// rebuild, or incremental apply against the live tree).
  Digest20 commit_root(const crypto::Seed& seed);

  transport::Endpoint& transport_;
  RecorderConfig config_;
  const crypto::Signer& signer_;
  const core::KeyRegistry& keys_;
  bgp::Speaker& speaker_;
  core::PathLengthClassifier classifier_;

  std::set<bgp::AsNumber> neighbors_;
  std::map<bgp::AsNumber, core::Promise> promises_;
  std::function<void(const CommitmentRecord&)> commitment_hook_;

  MirrorState state_;
  MessageLog log_;
  /// Raw routes as seen by the local BGP speaker, for the mirror
  /// cross-check (§6.2).
  std::map<bgp::AsNumber, std::map<bgp::Prefix, bgp::Route>> bgp_raw_;

  std::map<bgp::AsNumber, std::vector<SpiderBatch::Part>> pending_parts_;
  struct PendingAck {
    Digest20 digest;
    Time sent_at;
    bgp::AsNumber to;
    Bytes wire;        // retransmission payload
    int attempts = 0;  // transmissions so far
  };
  std::vector<PendingAck> awaiting_ack_;
  /// Digests of sent batches whose ACK already arrived.  A second ACK for
  /// one of these is benign: when the network delays our batch past the
  /// ACK deadline we retransmit, the neighbor's dedup re-ACKs, and both
  /// ACKs eventually land (likewise when the network duplicates a batch).
  /// Only an ACK matching neither set is an actual protocol violation.
  std::set<Digest20> satisfied_acks_;
  void schedule_ack_check(const Digest20& digest);
  std::uint64_t retransmissions_ = 0;

 public:
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:

  /// Digest of every batch already processed, mapped to whether it was
  /// ACKed.  A retransmission (our ACK was lost) or a network duplicate
  /// must not be re-applied — replaying old announces would regress the
  /// mirror — but a previously ACKed batch is re-ACKed so the sender's
  /// retransmit loop terminates.
  std::map<Digest20, bool> seen_batches_;

  std::map<bgp::AsNumber, std::map<Time, SpiderCommit>> received_commitments_;
  std::vector<std::string> alarms_;
  Faults faults_;

  // Incremental commit state (config_.incremental_commits).  The live tree
  // mirrors state_'s table between commits; dirty_prefixes_ accumulates the
  // prefixes whose inputs/exports changed since the last commitment.  The
  // committed_* snapshots detect global-parameter changes (ignore-input
  // faults, promises) that invalidate every prefix's bits at once and force
  // a full rebuild.
  core::Mtt live_tree_;
  bool live_tree_valid_ = false;
  crypto::Seed live_seed_{};
  std::set<bgp::Prefix> dirty_prefixes_;
  std::set<bgp::AsNumber> committed_ignored_;
  std::uint64_t promises_version_ = 0;
  std::uint64_t committed_promises_version_ = 0;

  std::uint64_t signatures_ = 0;
  std::uint64_t verifications_ = 0;
  std::uint64_t updates_mirrored_ = 0;
  std::uint64_t commitments_made_ = 0;
  std::uint64_t bytes_sent_ = 0;
  util::CpuMeter sign_meter_;
  util::CpuMeter mtt_meter_;
  util::CpuMeter total_meter_;
  bool flush_scheduled_ = false;
  bool started_ = false;
};

}  // namespace spider::proto

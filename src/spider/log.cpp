#include "spider/log.hpp"

#include <algorithm>

#include "crypto/ct.hpp"
#include "util/serde.hpp"

namespace spider::proto {

namespace {
Digest20 chain_hash(const Digest20& prev, const LogEntry& entry) {
  // The preimage keeps the ByteWriter field layout (big-endian fields,
  // u32 length prefix on the message) but is hashed in place with
  // digest20_concat — append() runs once per mirrored update, and the
  // serialize-then-hash copy was measurable at ingest rates.
  std::uint8_t header[25];
  std::size_t n = 0;
  auto be = [&](std::uint64_t v, int width) {
    for (int shift = (width - 1) * 8; shift >= 0; shift -= 8) {
      header[n++] = static_cast<std::uint8_t>(v >> shift);
    }
  };
  be(entry.seq, 8);
  be(static_cast<std::uint64_t>(entry.timestamp), 8);
  header[n++] = static_cast<std::uint8_t>(entry.direction);
  be(entry.peer_as, 4);
  be(entry.message.size(), 4);
  return crypto::digest20_concat({util::ByteSpan{prev.data(), prev.size()},
                                  util::ByteSpan{header, n},
                                  util::ByteSpan{entry.message.data(), entry.message.size()}});
}
}  // namespace

Bytes LogEntry::encode() const {
  util::ByteWriter w;
  w.u64(seq);
  w.i64(timestamp);
  w.u8(static_cast<std::uint8_t>(direction));
  w.u32(peer_as);
  w.bytes(message);
  w.u32(signature_bytes);
  w.digest(authenticator);
  return w.take();
}

LogEntry LogEntry::decode(ByteSpan data) {
  util::ByteReader r(data);
  LogEntry entry;
  entry.seq = r.u64();
  entry.timestamp = r.i64();
  std::uint8_t direction = r.u8();
  if (direction > 1) throw util::DecodeError("LogEntry: bad direction");
  entry.direction = static_cast<LogDirection>(direction);
  entry.peer_as = r.u32();
  entry.message = r.bytes();
  entry.signature_bytes = r.u32();
  entry.authenticator = r.digest();
  r.expect_end();
  return entry;
}

std::uint64_t LogCheckpoint::state_bytes() const {
  std::uint64_t total = 0;
  for (const Bytes& chunk : chunks) total += chunk.size();
  return total;
}

Bytes LogCheckpoint::encode() const {
  util::ByteWriter w;
  w.i64(timestamp);
  w.u32(static_cast<std::uint32_t>(chunks.size()));
  for (const Bytes& chunk : chunks) w.bytes(chunk);
  return w.take();
}

LogCheckpoint LogCheckpoint::decode(ByteSpan data) {
  util::ByteReader r(data);
  LogCheckpoint cp;
  cp.timestamp = r.i64();
  std::uint32_t n = r.check_count(r.u32(), 4, "LogCheckpoint chunks");
  cp.chunks.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) cp.chunks.push_back(r.bytes());
  r.expect_end();
  return cp;
}

Bytes CommitmentRecord::encode() const {
  util::ByteWriter w;
  w.i64(timestamp);
  // spider-taint: declassify(§6.5: the log, seeds included, is handed to the trusted checker; this record never travels further)
  w.raw(seed.span());
  w.digest(root);
  w.u32(num_classes);
  return w.take();
}

CommitmentRecord CommitmentRecord::decode(ByteSpan data) {
  util::ByteReader r(data);
  CommitmentRecord record;
  record.timestamp = r.i64();
  Bytes seed_bytes = r.raw(record.seed.data.size());
  std::copy(seed_bytes.begin(), seed_bytes.end(), record.seed.data.begin());
  record.root = r.digest();
  record.num_classes = r.u32();
  r.expect_end();
  return record;
}

const LogEntry& MessageLog::append(Time timestamp, LogDirection direction, std::uint32_t peer_as,
                                   Bytes message, std::uint32_t signature_bytes) {
  LogEntry entry;
  entry.seq = next_seq_++;
  entry.timestamp = timestamp;
  entry.direction = direction;
  entry.peer_as = peer_as;
  entry.message = std::move(message);
  entry.signature_bytes = signature_bytes;
  entry.authenticator = chain_hash(head_, entry);
  head_ = entry.authenticator;
  message_bytes_ += entry.message.size();
  signature_bytes_ += signature_bytes;
  entries_.push_back(std::move(entry));
  return entries_.back();
}

const LogEntry& MessageLog::append_entry(LogEntry entry) {
  next_seq_ = entry.seq + 1;
  head_ = entry.authenticator;
  message_bytes_ += entry.message.size();
  signature_bytes_ += entry.signature_bytes;
  entries_.push_back(std::move(entry));
  return entries_.back();
}

void MessageLog::add_checkpoint(Time timestamp, std::vector<Bytes> state_chunks) {
  LogCheckpoint cp{timestamp, std::move(state_chunks)};
  checkpoint_bytes_ += cp.state_bytes();
  checkpoints_.push_back(std::move(cp));
}

void MessageLog::record_commitment(const CommitmentRecord& record) {
  commitments_[record.timestamp] = record;
}

bool MessageLog::verify_chain() const {
  Digest20 prev{};
  if (!entries_.empty() && entries_.front().seq != 0) {
    // Pruned log: the first remaining entry carries the base; recompute
    // forward from its stored authenticator.
    prev = entries_.front().authenticator;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (!crypto::constant_time_equal(chain_hash(prev, entries_[i]), entries_[i].authenticator)) {
        return false;
      }
      prev = entries_[i].authenticator;
    }
    return true;
  }
  for (const LogEntry& entry : entries_) {
    if (!crypto::constant_time_equal(chain_hash(prev, entry), entry.authenticator)) return false;
    prev = entry.authenticator;
  }
  return true;
}

const LogCheckpoint* MessageLog::checkpoint_before(Time t) const {
  const LogCheckpoint* best = nullptr;
  for (const auto& cp : checkpoints_) {
    if (cp.timestamp <= t && (!best || cp.timestamp > best->timestamp)) best = &cp;
  }
  return best;
}

const CommitmentRecord* MessageLog::commitment_at(Time t) const {
  auto it = commitments_.find(t);
  return it == commitments_.end() ? nullptr : &it->second;
}

std::vector<const LogEntry*> MessageLog::entries_between(Time after, Time until) const {
  std::vector<const LogEntry*> out;
  for (const LogEntry& entry : entries_) {
    if (entry.timestamp > after && entry.timestamp <= until) out.push_back(&entry);
  }
  return out;
}

void MessageLog::prune_before(Time cutoff) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [cutoff](const LogEntry& e) { return e.timestamp >= cutoff; });
  for (auto del = entries_.begin(); del != it; ++del) {
    message_bytes_ -= del->message.size();
    signature_bytes_ -= del->signature_bytes;
  }
  entries_.erase(entries_.begin(), it);

  // Keep the newest checkpoint older than the cutoff — replay of the oldest
  // retained entries still needs a base state.
  const LogCheckpoint* base = checkpoint_before(cutoff);
  const bool has_base = base != nullptr;
  const Time base_ts = has_base ? base->timestamp : 0;
  auto cp_it = std::remove_if(checkpoints_.begin(), checkpoints_.end(),
                              [&](const LogCheckpoint& cp) {
                                if (has_base && cp.timestamp == base_ts) return false;
                                return cp.timestamp < cutoff;
                              });
  for (auto del = cp_it; del != checkpoints_.end(); ++del) checkpoint_bytes_ -= del->state_bytes();
  checkpoints_.erase(cp_it, checkpoints_.end());

  for (auto c = commitments_.begin(); c != commitments_.end();) {
    if (c->first < cutoff) {
      c = commitments_.erase(c);
    } else {
      ++c;
    }
  }
}

}  // namespace spider::proto

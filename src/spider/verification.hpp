// Verification sessions: the §4.5 / §6.1 VERIFY flow orchestrated across
// an AS's neighborhood.
//
// Any neighbor triggers verification for a commitment time T.  The session
// then:
//   1. collects the commitment each neighbor holds from the elector and
//      cross-checks them (INVALIDCOMMIT on any mismatch — self-contained
//      proof of equivocation);
//   2. has the elector's proof generator reconstruct the MTT
//      (checkpoint + replay + seed) and produce per-neighbor proofs;
//   3. runs every neighbor's checker in both roles (producer & consumer);
//   4. optionally runs extended verification (§6.6): producers re-announce
//      their exports at T, the elector redistributes the selected ones,
//      and consumers check coverage (unpropagated withdrawals surface
//      here);
//   5. returns a verdict per neighbor plus any transferable evidence.
//
// This is the layer a deployment would expose as "spiderctl verify AS5".
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "spider/checker.hpp"
#include "spider/deployment.hpp"
#include "spider/proof_generator.hpp"

namespace spider::proto {

struct NeighborVerdict {
  bgp::AsNumber neighbor = 0;
  std::optional<core::Detection> as_producer;
  std::optional<core::Detection> as_consumer;
  std::optional<core::Detection> extended;  // withdrawal-propagation check
  bool clean() const { return !as_producer && !as_consumer && !extended; }
};

struct VerificationReport {
  bgp::AsNumber elector = 0;
  Time commit_time = 0;
  /// Commitment equivocation found during the cross-check phase.
  std::optional<core::Detection> equivocation;
  /// True when the elector's replayed root matched its logged commitment.
  bool root_matches = false;
  std::vector<NeighborVerdict> verdicts;
  /// Proof bytes actually shipped during this session (wire encodings of
  /// the proof bundles, as before).
  std::size_t proof_bytes = 0;
  /// Proof bytes whose re-verification the session's subpath cache made
  /// redundant (src/verify): sibling material on interior fold levels
  /// skipped by a cache hit.  Accounted separately so the shipped total
  /// no longer hides the dedup savings; 0 when the cache is off.
  std::size_t proof_bytes_deduped = 0;
  double elapsed_seconds = 0;

  bool clean() const;
  /// Human-readable one-line summary per finding.
  std::vector<std::string> findings() const;
};

/// Runs a full verification session for `elector`'s commitment at
/// `commit_time` over a deployment.  `extended` additionally runs the
/// RE-ANNOUNCE protocol.  `within` restricts to a prefix subtree (§7.3).
///
/// Defined in src/verify/session.cpp (link spider_verify): this is the
/// sequential configuration of the pipelined session engine, which
/// produces the same verdicts, evidence and detections as the original
/// in-place flow.  verify::run_session exposes the pipelined/cached
/// configurations plus per-session statistics.
VerificationReport run_verification(Fig5Deployment& deploy, bgp::AsNumber elector,
                                    Time commit_time, bool extended = false,
                                    std::optional<bgp::Prefix> within = std::nullopt);

}  // namespace spider::proto

// The recorder's mirrored routing state, and the MTT construction shared by
// the commit path (live) and the proof generator (checkpoint + replay).
//
// Keeping both paths on one code path guarantees that replaying the message
// log reproduces a bit-identical MTT root (paper §6.5) — a property the
// test suite asserts directly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bgp/decision.hpp"
#include "core/mtt.hpp"
#include "core/promise.hpp"
#include "spider/messages.hpp"

namespace spider::proto {

/// A neighbor's current offer for one prefix, as mirrored from the signed
/// SPIDeR channel.
struct InputRecord {
  bgp::Route route;
  /// Digest of the announce part bytes (the quotable reference).
  Digest20 part_digest{};
  Time received_at = 0;

  bool operator==(const InputRecord&) const = default;
};

/// What this AS has advertised to one neighbor for one prefix.
struct ExportRecord {
  bgp::Route route;  // as exported: own ASN prepended
  Time sent_at = 0;

  bool operator==(const ExportRecord&) const = default;
};

/// Mirror of the AS's SPIDeR-visible routing state: inputs per producer
/// neighbor and exports per consumer neighbor.
class MirrorState {
 public:
  /// In-direction messages carry the sender's timestamp ("effective when
  /// sent", §6.3) and may arrive out of order when a lost batch is
  /// retransmitted after newer state already got through.  Applying a stale
  /// message would regress the mirror and later read as an accusable
  /// divergence, so both apply_*_in paths ignore any message older than the
  /// newest one already applied for that (producer, prefix).  The guard is
  /// part of the mirror itself so live processing and checkpoint+replay
  /// reconstruction (§6.5) make identical decisions.
  void apply_announce_in(const SpiderAnnounce& announce, const Digest20& part_digest);
  void apply_withdraw_in(const SpiderWithdraw& withdraw);
  void apply_announce_out(const SpiderAnnounce& announce);
  void apply_withdraw_out(const SpiderWithdraw& withdraw);

  const InputRecord* input(bgp::AsNumber from, const bgp::Prefix& prefix) const;
  const ExportRecord* exported(bgp::AsNumber to, const bgp::Prefix& prefix) const;

  const std::map<bgp::AsNumber, std::map<bgp::Prefix, InputRecord>>& inputs() const {
    return inputs_;
  }
  const std::map<bgp::AsNumber, std::map<bgp::Prefix, ExportRecord>>& exports() const {
    return exports_;
  }

  /// Union of prefixes with any input or export: the MTT's prefix set.
  std::set<bgp::Prefix> all_prefixes() const;

  /// Checkpoint serialization (§6.5).
  Bytes serialize() const;
  static MirrorState deserialize(ByteSpan data);

  /// Streamed checkpoint serialization: the state is emitted as a sequence
  /// of self-contained chunks of roughly `chunk_bytes` each, so writing or
  /// restoring a full-RIB checkpoint (hundreds of thousands of prefixes)
  /// never materializes one contiguous buffer.  Each chunk holds complete
  /// sections — (tag, neighbor, count, records...) — and a neighbor group
  /// larger than a chunk is split into several sections that the reader
  /// merges back, so chunk boundaries never cut a record in half.
  std::vector<Bytes> serialize_chunked(std::size_t chunk_bytes) const;
  static MirrorState deserialize_chunked(const std::vector<Bytes>& chunks);

  bool operator==(const MirrorState&) const = default;

 private:
  std::map<bgp::AsNumber, std::map<bgp::Prefix, InputRecord>> inputs_;
  std::map<bgp::AsNumber, std::map<bgp::Prefix, ExportRecord>> exports_;
  /// Newest in-message timestamp applied per (producer, prefix) — survives
  /// withdrawals, so a retransmitted stale announce cannot resurrect a
  /// withdrawn route.  Serialized with checkpoints to keep replay exact.
  std::map<bgp::AsNumber, std::map<bgp::Prefix, Time>> in_high_water_;
};

/// The elector's (claimed) choice for a prefix: the best input under the
/// standard decision process, restricted to non-ignored producers.  This is
/// the e of VPref step 3; a faulty AS that filters a neighbor lists it in
/// `ignored` so its commitment matches its (mis)behavior.
std::optional<bgp::Route> elector_choice(const MirrorState& state, const bgp::Prefix& prefix,
                                         const std::set<bgp::AsNumber>& ignored);

/// Builds the per-prefix VPref input bits over the mirrored state:
///   bit[j] = 1  iff  some considered input (or ⊥) falls in class j, or
///                    class j is worse than the chosen class under at least
///                    one promise (VPref step 3).
std::vector<std::pair<bgp::Prefix, std::vector<bool>>> build_mtt_entries(
    const MirrorState& state, const core::Classifier& classifier,
    const std::map<bgp::AsNumber, core::Promise>& promises,
    const std::set<bgp::AsNumber>& ignored_producers);

/// The bit vector build_mtt_entries would emit for one prefix, or nullopt
/// when the prefix has left the table (no input from any producer and no
/// export to any consumer — ignored producers still count for presence,
/// exactly as in all_prefixes()).  This is what lets the incremental commit
/// path turn a dirty prefix into a single MttUpdate without recomputing
/// the whole table: a prefix's bits depend only on its own inputs/exports
/// plus the global classifier and promises.
std::optional<std::vector<bool>> mtt_entry_for(const MirrorState& state,
                                               const core::Classifier& classifier,
                                               const std::map<bgp::AsNumber, core::Promise>& promises,
                                               const std::set<bgp::AsNumber>& ignored_producers,
                                               const bgp::Prefix& prefix);

/// Strips the elector's own ASN from an exported route, recovering the
/// underlying imported route's shape for classification (the r' of §6.2).
bgp::Route underlying_route(bgp::Route exported, bgp::AsNumber elector);

/// Equality over the attributes that actually cross the wire.  learned_from
/// and local_pref are import-side annotations: the sender's copy has them
/// cleared while the receiver's mirror sets them, so protocol-level route
/// comparisons must ignore them.
bool same_wire_route(const bgp::Route& a, const bgp::Route& b);

}  // namespace spider::proto

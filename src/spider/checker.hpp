// The SPIDeR checker (paper §6.1): runs at each neighbor of the AS under
// verification and validates the bit proofs delivered by that AS's proof
// generator against the commitment the neighbor holds.
//
//   * As a producer, the neighbor checks that every route it was exporting
//     to the elector (within the loose-sync window) is proven present
//     (bit = 1) in its class.
//   * As a consumer, it checks that every class its promise ranks above
//     the class of each route it was offered is proven absent (bit = 0).
//
// All failures surface as core::Detection values, with the same fault
// taxonomy as single-prefix VPref.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/vpref.hpp"
#include "spider/proof_generator.hpp"

namespace spider::proto {

/// Pluggable bit-proof verifier: (root, num_classes, proof) -> opens?
/// Session engines (src/verify) substitute a memoizing verifier here; the
/// default forwards to core::Mtt::verify, so every overload without an
/// explicit function behaves exactly as before.
using ProofVerifyFn =
    std::function<bool(const Digest20&, std::uint32_t, const core::MttPrefixProof&)>;

class Checker {
 public:
  /// `my_window_routes` maps each prefix this neighbor was exporting to
  /// the elector to the set of values that were in force at some point in
  /// [T-δ, T]  (the neighbor knows its own history; for stable routes this
  /// is a single value).
  static std::optional<core::Detection> check_producer_proofs(
      const SpiderCommit& commit, bgp::AsNumber elector,
      const std::map<bgp::Prefix, std::vector<bgp::Route>>& my_window_routes,
      const ProducerProofs& proofs, const core::Classifier& classifier);
  static std::optional<core::Detection> check_producer_proofs(
      const SpiderCommit& commit, bgp::AsNumber elector,
      const std::map<bgp::Prefix, std::vector<bgp::Route>>& my_window_routes,
      const ProducerProofs& proofs, const core::Classifier& classifier,
      const ProofVerifyFn& verify);

  /// `my_imports` maps each prefix to the route this neighbor currently
  /// holds from the elector (its own Adj-RIB-In mirror).
  static std::optional<core::Detection> check_consumer_proofs(
      const SpiderCommit& commit, bgp::AsNumber elector, const core::Promise& promise,
      const std::map<bgp::Prefix, bgp::Route>& my_imports, const ConsumerProofs& proofs,
      bgp::AsNumber self, const core::Classifier& classifier);
  static std::optional<core::Detection> check_consumer_proofs(
      const SpiderCommit& commit, bgp::AsNumber elector, const core::Promise& promise,
      const std::map<bgp::Prefix, bgp::Route>& my_imports, const ConsumerProofs& proofs,
      bgp::AsNumber self, const core::Classifier& classifier, const ProofVerifyFn& verify);

  /// Extended verification, consumer side (§6.6): every route this
  /// consumer holds from the elector must be covered by a RE-ANNOUNCE from
  /// the original producer; a missing one means the producer withdrew the
  /// route and the elector failed to propagate the withdrawal.
  static std::optional<core::Detection> check_re_announcements(
      bgp::AsNumber elector, const std::map<bgp::Prefix, bgp::Route>& my_imports,
      const std::vector<SpiderAnnounce>& re_announcements);

  /// Cross-check of commitments gossiped between neighbors: any two
  /// distinct roots for the same (elector, timestamp) prove equivocation.
  static std::optional<core::Detection> cross_check_commits(
      bgp::AsNumber elector, const std::vector<SpiderCommit>& commits);
};

}  // namespace spider::proto

#include "crypto/bignum_ref.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/ct.hpp"

namespace spider::crypto::ref {

// ===================================================================== ref16

namespace {

std::vector<std::uint16_t> to16(const BigInt& v) {
  Bytes be = v.to_bytes_be();
  std::vector<std::uint16_t> out((be.size() + 1) / 2, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    std::size_t from_end = be.size() - 1 - i;
    out[i / 2] = static_cast<std::uint16_t>(
        out[i / 2] | static_cast<std::uint16_t>(be[from_end]) << (8 * (i % 2)));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt from16(const std::vector<std::uint16_t>& digits) {
  Bytes be(digits.size() * 2, 0);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    be[be.size() - 1 - 2 * i] = static_cast<std::uint8_t>(digits[i]);
    be[be.size() - 2 - 2 * i] = static_cast<std::uint8_t>(digits[i] >> 8);
  }
  return BigInt::from_bytes_be(be);
}

}  // namespace

BigInt mul_simple(const BigInt& a, const BigInt& b) {
  auto da = to16(a);
  auto db = to16(b);
  std::vector<std::uint16_t> out(da.size() + db.size(), 0);
  for (std::size_t i = 0; i < da.size(); ++i) {
    std::uint32_t carry = 0;
    for (std::size_t j = 0; j < db.size(); ++j) {
      std::uint32_t cur = static_cast<std::uint32_t>(out[i + j]) +
                          static_cast<std::uint32_t>(da[i]) * db[j] + carry;
      out[i + j] = static_cast<std::uint16_t>(cur);
      carry = cur >> 16;
    }
    std::size_t k = i + db.size();
    while (carry != 0) {
      std::uint32_t cur = static_cast<std::uint32_t>(out[k]) + carry;
      out[k] = static_cast<std::uint16_t>(cur);
      carry = cur >> 16;
      ++k;
    }
  }
  return from16(out);
}

BigInt::DivMod divmod_simple(const BigInt& a, const BigInt& b) {
  if (b.is_zero()) throw std::domain_error("divmod_simple: division by zero");
  // Binary long division: bring down one dividend bit at a time.
  BigInt q, r;
  for (std::size_t i = a.bit_length(); i-- > 0;) {
    r = r << 1;
    if (a.bit(i)) r = r + BigInt{1};
    if (r >= b) {
      r = r - b;
      q = q + (BigInt{1} << i);
    }
  }
  return {q, r};
}

BigInt mod_exp_simple(const BigInt& base, const BigInt& exponent, const BigInt& modulus) {
  if (modulus < BigInt{2}) throw std::domain_error("mod_exp_simple: modulus must be >= 2");
  BigInt result{1};
  result = divmod_simple(result, modulus).remainder;
  BigInt b = divmod_simple(base, modulus).remainder;
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    result = divmod_simple(mul_simple(result, result), modulus).remainder;
    if (exponent.bit(i)) result = divmod_simple(mul_simple(result, b), modulus).remainder;
  }
  return result;
}

// ===================================================================== ref32
//
// The original engine, kept verbatim modulo the representation shim:
// little-endian uint32 vectors with no trailing zeros.

namespace {

using Num32 = std::vector<std::uint32_t>;
constexpr std::uint64_t kBase32 = 1ULL << 32;

void trim32(Num32& v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

Num32 to32(const BigInt& v) {
  Bytes be = v.to_bytes_be();
  Num32 out((be.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    std::size_t from_end = be.size() - 1 - i;
    out[i / 4] |= static_cast<std::uint32_t>(be[from_end]) << (8 * (i % 4));
  }
  trim32(out);
  return out;
}

BigInt from32(const Num32& v) {
  Bytes be(v.size() * 4, 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t b = 0; b < 4; ++b) {
      be[be.size() - 1 - (4 * i + b)] = static_cast<std::uint8_t>(v[i] >> (8 * b));
    }
  }
  return BigInt::from_bytes_be(be);
}

int cmp32(const Num32& a, const Num32& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    // Retained reference engine, exercised only by the differential
    // battery against throwaway test keys; variable-time by design so the
    // comparison against the production kernels is fair.
    // spider-lint: allow(R13) reference engine is variable-time by design
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Num32 mul32(const Num32& a, const Num32& b) {
  if (a.empty() || b.empty()) return {};
  Num32 out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  trim32(out);
  return out;
}

Num32 shl32(const Num32& v, std::size_t bits) {
  if (v.empty() || bits == 0) return v;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  Num32 out(v.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint64_t val = static_cast<std::uint64_t>(v[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<std::uint32_t>(val);
    out[i + limb_shift + 1] |= static_cast<std::uint32_t>(val >> 32);
  }
  trim32(out);
  return out;
}

Num32 shr32(const Num32& v, std::size_t bits) {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= v.size()) return {};
  const std::size_t bit_shift = bits % 32;
  Num32 out(v.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t val = v[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < v.size()) {
      val |= static_cast<std::uint64_t>(v[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out[i] = static_cast<std::uint32_t>(val);
  }
  trim32(out);
  return out;
}

/// Knuth Algorithm D over 32-bit limbs, exactly as the seed implemented it.
void divmod32(const Num32& u_in, const Num32& v_in, Num32* q_out, Num32* r_out) {
  if (v_in.empty()) throw std::domain_error("divmod32: division by zero");
  if (cmp32(u_in, v_in) < 0) {
    if (q_out != nullptr) q_out->clear();
    if (r_out != nullptr) *r_out = u_in;
    return;
  }
  if (v_in.size() == 1) {
    const std::uint64_t d = v_in[0];
    Num32 q(u_in.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = u_in.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | u_in[i];
      q[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    trim32(q);
    if (q_out != nullptr) *q_out = std::move(q);
    if (r_out != nullptr) {
      r_out->clear();
      if (rem != 0) r_out->push_back(static_cast<std::uint32_t>(rem));
    }
    return;
  }

  int shift = 0;
  {
    std::uint32_t top = v_in.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  Num32 un = shl32(u_in, static_cast<std::size_t>(shift));
  Num32 vn = shl32(v_in, static_cast<std::size_t>(shift));
  const std::size_t n = vn.size();
  const std::size_t m = un.size() - n;
  un.push_back(0);

  Num32 q(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t numerator = (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t q_hat = numerator / vn[n - 1];
    std::uint64_t r_hat = numerator % vn[n - 1];
    while (q_hat >= kBase32 || q_hat * vn[n - 2] > ((r_hat << 32) | un[j + n - 2])) {
      --q_hat;
      r_hat += vn[n - 1];
      if (r_hat >= kBase32) break;
    }

    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = q_hat * vn[i] + carry;
      carry = product >> 32;
      std::int64_t sub = static_cast<std::int64_t>(un[i + j]) -
                         static_cast<std::int64_t>(product & 0xffffffffULL) - borrow;
      if (sub < 0) {
        sub += static_cast<std::int64_t>(kBase32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<std::uint32_t>(sub);
    }
    std::int64_t sub =
        static_cast<std::int64_t>(un[j + n]) - static_cast<std::int64_t>(carry) - borrow;
    if (sub < 0) {
      sub += static_cast<std::int64_t>(kBase32);
      un[j + n] = static_cast<std::uint32_t>(sub);
      --q_hat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = static_cast<std::uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<std::uint32_t>(sum);
        carry2 = sum >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + carry2);
    } else {
      un[j + n] = static_cast<std::uint32_t>(sub);
    }
    q[j] = static_cast<std::uint32_t>(q_hat);
  }

  trim32(q);
  if (q_out != nullptr) *q_out = std::move(q);
  if (r_out != nullptr) {
    Num32 r(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
    trim32(r);
    *r_out = shr32(r, static_cast<std::size_t>(shift));
  }
}

Num32 mod32(const Num32& a, const Num32& m) {
  Num32 r;
  divmod32(a, m, nullptr, &r);
  return r;
}

std::size_t bitlen32(const Num32& v) {
  if (v.empty()) return 0;
  std::uint32_t top = v.back();
  std::size_t bits = (v.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool bit32(const Num32& v, std::size_t i) {
  std::size_t limb = i / 32;
  if (limb >= v.size()) return false;
  return (v[limb] >> (i % 32)) & 1u;
}

/// Montgomery context for an odd modulus N: R = B^n with B = 2^32.
struct MontCtx32 {
  Num32 n;                // modulus limbs
  std::uint32_t n_prime;  // -N^-1 mod B
  Num32 r2;               // R^2 mod N

  explicit MontCtx32(const Num32& modulus) : n(modulus) {
    std::uint32_t inv = 1;
    for (int i = 0; i < 5; ++i) inv *= 2 - n[0] * inv;
    n_prime = static_cast<std::uint32_t>(0u - inv);
    Num32 r_full = shl32({1}, 32 * n.size());
    r2 = mod32(mul32(r_full, r_full), n);
  }

  /// CIOS Montgomery multiplication: returns a*b*R^-1 mod N.
  void mul(const Num32& a, const Num32& b, Num32& out) const {
    const std::size_t s = n.size();
    std::vector<std::uint64_t> t(s + 2, 0);
    for (std::size_t i = 0; i < s; ++i) {
      std::uint64_t carry = 0;
      std::uint64_t ai = a[i];
      for (std::size_t j = 0; j < s; ++j) {
        std::uint64_t cur = t[j] + ai * b[j] + carry;
        t[j] = cur & 0xffffffffULL;
        carry = cur >> 32;
      }
      std::uint64_t cur = t[s] + carry;
      t[s] = cur & 0xffffffffULL;
      t[s + 1] += cur >> 32;

      std::uint64_t m = (t[0] * n_prime) & 0xffffffffULL;
      carry = 0;
      std::uint64_t low = t[0] + m * n[0];
      carry = low >> 32;
      for (std::size_t j = 1; j < s; ++j) {
        std::uint64_t c2 = t[j] + m * n[j] + carry;
        t[j - 1] = c2 & 0xffffffffULL;
        carry = c2 >> 32;
      }
      std::uint64_t c3 = t[s] + carry;
      t[s - 1] = c3 & 0xffffffffULL;
      t[s] = t[s + 1] + (c3 >> 32);
      t[s + 1] = 0;
    }
    bool ge = t[s] != 0;
    if (!ge) {
      ge = true;
      for (std::size_t i = s; i-- > 0;) {
        // spider-lint: allow(R13) reference engine (see cmp32)
        if (t[i] != n[i]) {
          ge = t[i] > n[i];
          break;
        }
      }
    }
    out.assign(s, 0);
    if (ge) {
      std::int64_t borrow = 0;
      for (std::size_t i = 0; i < s; ++i) {
        std::int64_t diff =
            static_cast<std::int64_t>(t[i]) - static_cast<std::int64_t>(n[i]) - borrow;
        if (diff < 0) {
          diff += static_cast<std::int64_t>(kBase32);
          borrow = 1;
        } else {
          borrow = 0;
        }
        out[i] = static_cast<std::uint32_t>(diff);
      }
    } else {
      for (std::size_t i = 0; i < s; ++i) out[i] = static_cast<std::uint32_t>(t[i]);
    }
  }
};

Num32 padded32(Num32 v, std::size_t size) {
  v.resize(size, 0);
  return v;
}

}  // namespace

BigInt mod_exp32(const BigInt& base, const BigInt& exponent, const BigInt& modulus) {
  if (modulus < BigInt{2}) throw std::domain_error("mod_exp32: modulus must be >= 2");
  const Num32 mod = to32(modulus);
  const Num32 exp = to32(exponent);
  if (exp.empty()) return from32(mod32({1}, mod));
  Num32 b = mod32(to32(base), mod);
  if (b.empty()) return BigInt{};

  if (!modulus.is_odd()) {
    Num32 result = mod32({1}, mod);
    for (std::size_t i = bitlen32(exp); i-- > 0;) {
      result = mod32(mul32(result, result), mod);
      if (bit32(exp, i)) result = mod32(mul32(result, b), mod);
    }
    return from32(result);
  }

  MontCtx32 ctx(mod);
  const std::size_t s = ctx.n.size();
  Num32 base_m(s), acc(s), tmp(s);
  ctx.mul(padded32(b, s), padded32(ctx.r2, s), base_m);
  Num32 one_m;
  {
    Num32 r_mod = mod32(shl32({1}, 32 * s), mod);
    one_m = padded32(r_mod, s);
  }

  std::vector<Num32> table(16);
  table[0] = one_m;
  table[1] = base_m;
  for (std::size_t i = 2; i < 16; ++i) {
    table[i].assign(s, 0);
    ctx.mul(table[i - 1], base_m, table[i]);
  }

  const std::size_t nbits = bitlen32(exp);
  const std::size_t nwindows = (nbits + 3) / 4;
  acc = one_m;
  for (std::size_t w = nwindows; w-- > 0;) {
    for (int k = 0; k < 4; ++k) {
      ctx.mul(acc, acc, tmp);
      acc.swap(tmp);
    }
    std::uint32_t window = 0;
    for (int k = 3; k >= 0; --k) {
      std::size_t bit_idx = w * 4 + static_cast<std::size_t>(k);
      window = static_cast<std::uint32_t>((window << 1) |
                                          (bit_idx < nbits && bit32(exp, bit_idx) ? 1 : 0));
    }
    if (window != 0) {
      ctx.mul(acc, table[window], tmp);
      acc.swap(tmp);
    }
  }

  Num32 unit(s, 0);
  unit[0] = 1;
  ctx.mul(acc, unit, tmp);
  trim32(tmp);
  return from32(tmp);
}

Bytes rsa_sign_seed(const RsaPrivateKey& key, ByteSpan message) {
  const std::size_t k = key.public_key().modulus_bytes();
  BigInt m = BigInt::from_bytes_be(pkcs1_sha512_encode(message, k));

  // CRT recombination over ref32 primitives, exactly the seed structure.
  BigInt sp = mod_exp32(m, key.dp, key.p);
  BigInt sq = mod_exp32(m, key.dq, key.q);
  BigInt sq_mod_p = from32(mod32(to32(sq), to32(key.p)));
  BigInt h = sp >= sq_mod_p ? sp - sq_mod_p : key.p - (sq_mod_p - sp);
  h = from32(mod32(mul32(to32(h), to32(key.qinv)), to32(key.p)));
  BigInt s = sq + from32(mul32(to32(h), to32(key.q)));
  // spider-taint: declassify(the finished signature is the public output of signing)
  return s.to_bytes_be(k);
}

Bytes rsa_sign_nocrt(const RsaPrivateKey& key, ByteSpan message) {
  const std::size_t k = key.public_key().modulus_bytes();
  BigInt m = BigInt::from_bytes_be(pkcs1_sha512_encode(message, k));
  return mod_exp32(m, key.d, key.n).to_bytes_be(k);
}

bool rsa_verify_seed(const RsaPublicKey& key, ByteSpan message, ByteSpan signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  BigInt s = BigInt::from_bytes_be(signature);
  if (s >= key.n) return false;
  BigInt m = mod_exp32(s, key.e, key.n);
  return constant_time_equal(m.to_bytes_be(k), pkcs1_sha512_encode(message, k));
}

}  // namespace spider::crypto::ref

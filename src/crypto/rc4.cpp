#include "crypto/rc4.hpp"

#include <stdexcept>
#include <utility>

namespace spider::crypto {

Rc4::Rc4(ByteSpan key) {
  if (key.empty() || key.size() > 256) throw std::invalid_argument("Rc4: key length must be 1..256");
  for (int i = 0; i < 256; ++i) s_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  std::uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s_[static_cast<std::size_t>(i)] + key[static_cast<std::size_t>(i) % key.size()]);
    std::swap(s_[static_cast<std::size_t>(i)], s_[j]);
  }
}

std::uint8_t Rc4::next_byte() {
  i_ = static_cast<std::uint8_t>(i_ + 1);
  j_ = static_cast<std::uint8_t>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<std::uint8_t>(s_[i_] + s_[j_])];
}

void Rc4::keystream(std::uint8_t* out, std::size_t len) {
  for (std::size_t k = 0; k < len; ++k) out[k] = next_byte();
}

Rc4Csprng::Rc4Csprng(ByteSpan seed) : rc4_(seed) {
  std::uint8_t sink[256];
  for (std::size_t dropped = 0; dropped < kDropBytes; dropped += sizeof(sink)) {
    rc4_.keystream(sink, sizeof(sink));
  }
}

Bytes Rc4Csprng::bytes(std::size_t len) {
  Bytes out(len);
  fill(out.data(), len);
  return out;
}

std::uint64_t Rc4Csprng::next_u64() {
  std::uint8_t b[8];
  fill(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

}  // namespace spider::crypto

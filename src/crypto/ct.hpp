// Constant-time comparison for digest and signature material.
//
// Every equality check on a digest, MAC, or signature must go through
// constant_time_equal: an early-exit comparison (memcmp, std::array
// operator==) leaks the length of the matching prefix through timing,
// which is exactly the side channel that lets an attacker forge
// authenticators byte by byte.  spider_lint rule R7 bans memcmp and
// digest operator== outside this file.
#pragma once

#include "util/bytes.hpp"

namespace spider::crypto {

/// Constant-time equality: the running time depends only on the lengths,
/// never on the contents.  Unequal lengths return false immediately
/// (lengths are public).
bool constant_time_equal(util::ByteSpan a, util::ByteSpan b);

inline bool constant_time_equal(const util::Digest20& a, const util::Digest20& b) {
  return constant_time_equal(util::ByteSpan{a.data(), a.size()},
                             util::ByteSpan{b.data(), b.size()});
}

}  // namespace spider::crypto

// RC4 stream cipher and the CSPRNG construction the paper describes
// (§7.1: "The CSPRNG is implemented by encrypting sequences of zeroes with
// RC4, discarding the first 3,072 bytes to mitigate known weaknesses").
//
// RC4 is used here exactly as in the paper: as a pseudo-random *generator*
// for commitment bitstrings, never as a transport cipher.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace spider::crypto {

using util::Bytes;
using util::ByteSpan;

/// Raw RC4 keystream generator.
class Rc4 {
 public:
  /// Key length must be in [1, 256] bytes.
  explicit Rc4(ByteSpan key);

  /// Returns the next keystream byte.
  std::uint8_t next_byte();

  /// Fills `out` with keystream (equivalently: encrypts zeroes).
  void keystream(std::uint8_t* out, std::size_t len);

 private:
  std::array<std::uint8_t, 256> s_{};
  std::uint8_t i_ = 0;
  std::uint8_t j_ = 0;
};

/// RC4-based CSPRNG with the standard RC4-drop[3072] hardening.
class Rc4Csprng {
 public:
  static constexpr std::size_t kDropBytes = 3072;

  explicit Rc4Csprng(ByteSpan seed);

  void fill(std::uint8_t* out, std::size_t len) { rc4_.keystream(out, len); }
  Bytes bytes(std::size_t len);
  std::uint64_t next_u64();

 private:
  Rc4 rc4_;
};

}  // namespace spider::crypto

// Multi-lane SHA-512: hashes batches of independent messages in parallel
// SIMD lanes (8-wide AVX-512, 4-wide AVX2, scalar otherwise).
//
// SPIDeR's labeling workload is millions of short, independent,
// equal-length messages (41-byte PRF inputs, 21-byte leaf inputs, k*20-byte
// prefix-node inputs), which is exactly the shape a lane-parallel
// compression function wants: the batcher groups consecutive messages with
// the same padded block count, runs one transposed compression per block
// across the group, and falls back to the scalar streaming class for
// leftovers.  Results are bit-identical to Sha512::hash on every input —
// the differential battery (tests/test_crypto_diff.cpp) enforces this.
#pragma once

#include <cstddef>

#include "crypto/sha2.hpp"
#include "util/bytes.hpp"

namespace spider::crypto {

/// Lanes the fastest available backend processes per compression call:
/// 8 (AVX-512), 4 (AVX2) or 1 (scalar fallback).  Constant for the life of
/// the process.
std::size_t sha512_lanes();

/// outs[i] = SHA-512(msgs[i]) for i in [0, n).
void sha512_batch(const ByteSpan* msgs, std::size_t n, Sha512::Digest* outs);

/// outs[i] = digest20(msgs[i]): the truncated form every commitment label
/// uses (paper §7.1).
void digest20_batch(const ByteSpan* msgs, std::size_t n, Digest20* outs);

}  // namespace spider::crypto

#include "crypto/rsa.hpp"

#include <optional>
#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"
#include "crypto/mont.hpp"
#include "crypto/sha2.hpp"
#include "obs/metrics.hpp"
#include "util/serde.hpp"

namespace spider::crypto {

namespace {

// DER prefix for a SHA-512 DigestInfo (RFC 8017, PKCS#1 v1.5).
constexpr std::uint8_t kSha512DigestInfo[] = {
    0x30, 0x51, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x03, 0x05, 0x00, 0x04, 0x40};

}  // namespace

Bytes pkcs1_sha512_encode(ByteSpan message, std::size_t em_len) {
  auto digest = Sha512::hash(message);
  const std::size_t t_len = sizeof(kSha512DigestInfo) + digest.size();
  if (em_len < t_len + 11) throw std::invalid_argument("pkcs1_encode: modulus too small");
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), std::begin(kSha512DigestInfo), std::end(kSha512DigestInfo));
  em.insert(em.end(), digest.begin(), digest.end());
  return em;
}

Bytes RsaPublicKey::encode() const {
  util::ByteWriter w;
  w.bytes(n.to_bytes_be());
  w.bytes(e.to_bytes_be());
  return w.take();
}

namespace {
/// Keys are compared and digested by their encoded bytes, so the integer
/// fields must be minimal: a leading zero byte would make two encodings of
/// the same key unequal.
Bytes minimal_be(util::ByteReader& r, const char* what) {
  Bytes bytes = r.bytes();
  if (!bytes.empty() && bytes.front() == 0) {
    throw util::DecodeError(std::string(what) + ": non-minimal integer encoding");
  }
  return bytes;
}
}  // namespace

RsaPublicKey RsaPublicKey::decode(ByteSpan data) {
  util::ByteReader r(data);
  RsaPublicKey key;
  key.n = BigInt::from_bytes_be(minimal_be(r, "RsaPublicKey n"));
  key.e = BigInt::from_bytes_be(minimal_be(r, "RsaPublicKey e"));
  r.expect_end();
  return key;
}

RsaPrivateKey rsa_generate(std::size_t bits, util::SplitMix64& rng) {
  if (bits < 128) throw std::invalid_argument("rsa_generate: modulus too small");
  const BigInt e{65537};
  for (;;) {
    BigInt p = generate_prime(bits / 2, rng);
    BigInt q = generate_prime(bits - bits / 2, rng);
    if (p == q) continue;
    if (p < q) std::swap(p, q);  // convention: p > q so qinv = q^-1 mod p works
    BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    BigInt phi = (p - BigInt{1}) * (q - BigInt{1});
    if (BigInt::gcd(e, phi) != BigInt{1}) continue;
    BigInt d = e.mod_inverse(phi);
    RsaPrivateKey key;
    key.n = n;
    key.e = e;
    key.d = d;
    key.p = p;
    key.q = q;
    key.dp = d % (p - BigInt{1});
    key.dq = d % (q - BigInt{1});
    key.qinv = q.mod_inverse(p);
    return key;
  }
}

Bytes rsa_sign(const RsaPrivateKey& key, ByteSpan message) {
  SPIDER_OBS_COUNT("crypto/rsa_sign_ops", 1);
  SPIDER_OBS_COUNT("crypto/rsa_sign_bytes", message.size());
  const std::size_t k = key.public_key().modulus_bytes();
  BigInt m = BigInt::from_bytes_be(pkcs1_sha512_encode(message, k));

  // CRT: s_p = m^dp mod p, s_q = m^dq mod q, recombine.  The exponents
  // are key material, so both halves run the constant-time ladder, and
  // the recombination below avoids the sp-vs-sq comparison branch by
  // adding p before subtracting: (sp + p) - (sq mod p) is always in
  // (0, 2p), and the trailing mod p restores the residue.
  BigInt sp = m.mod_exp_ct(key.dp, key.p);
  BigInt sq = m.mod_exp_ct(key.dq, key.q);
  BigInt h = ((sp + key.p) - (sq % key.p)) % key.p;
  h = (h * key.qinv) % key.p;
  BigInt s = sq + h * key.q;
  // spider-taint: declassify(the finished signature is the public output of signing)
  return s.to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& key, ByteSpan message, ByteSpan signature) {
  SPIDER_OBS_COUNT("crypto/rsa_verify_ops", 1);
  SPIDER_OBS_COUNT("crypto/rsa_verify_bytes", message.size());
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  BigInt s = BigInt::from_bytes_be(signature);
  if (s >= key.n) return false;
  BigInt m = s.mod_exp(key.e, key.n);
  Bytes expected = pkcs1_sha512_encode(message, k);
  return constant_time_equal(m.to_bytes_be(k), expected);
}

std::vector<bool> rsa_verify_batch(const RsaPublicKey& key,
                                   const std::vector<RsaVerifyItem>& items) {
  std::vector<bool> ok(items.size(), false);
  if (items.empty()) return ok;
  SPIDER_OBS_COUNT("crypto/rsa_verify_batches", 1);
  SPIDER_OBS_COUNT("crypto/rsa_verify_batch_items", items.size());
  const std::size_t k = key.modulus_bytes();

  // One Montgomery context for the whole batch.  A degenerate public key
  // (even or tiny modulus) has no Montgomery form; fall back to the
  // scalar engine per item so batch and scalar verdicts always agree.
  std::optional<MontCtx> ctx;
  try {
    ctx.emplace(key.n);
  } catch (const std::domain_error&) {
  }

  for (std::size_t i = 0; i < items.size(); ++i) {
    SPIDER_OBS_COUNT("crypto/rsa_verify_ops", 1);
    SPIDER_OBS_COUNT("crypto/rsa_verify_bytes", items[i].message.size());
    if (items[i].signature.size() != k) continue;
    BigInt s = BigInt::from_bytes_be(items[i].signature);
    if (s >= key.n) continue;
    BigInt m = ctx ? ctx->exp(s, key.e) : s.mod_exp(key.e, key.n);
    Bytes expected = pkcs1_sha512_encode(items[i].message, k);
    ok[i] = constant_time_equal(m.to_bytes_be(k), expected);
  }
  return ok;
}

Bytes HashSigner::sign(ByteSpan message) const {
  SPIDER_OBS_COUNT("crypto/hash_sign_ops", 1);
  SPIDER_OBS_COUNT("crypto/hash_sign_bytes", message.size());
  auto d = HmacSha512::mac20(key_, message);
  return Bytes(d.begin(), d.end());
}

bool HashVerifier::verify(ByteSpan message, ByteSpan signature) const {
  SPIDER_OBS_COUNT("crypto/hash_verify_ops", 1);
  SPIDER_OBS_COUNT("crypto/hash_verify_bytes", message.size());
  auto d = HmacSha512::mac20(key_, message);
  return constant_time_equal(ByteSpan{d.data(), d.size()}, signature);
}

}  // namespace spider::crypto

// 8-lane SHA-512 compression over AVX-512: one 512-bit vector holds the
// same state word across eight independent messages.  This TU is the only
// one compiled with -mavx512f; when the toolchain can't target AVX-512 it
// compiles to a stub and the dispatcher never selects it.
#include "crypto/sha2_kernel.hpp"

#if defined(__AVX512F__) && defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

// GCC's _mm512_ror_epi64 expands through _mm512_undefined_epi32(), whose
// deliberately-uninitialized merge operand trips -Wmaybe-uninitialized when
// inlined at -O2.  The operand is a don't-care (the mask is all-ones), so
// silence just this TU.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

namespace spider::crypto::detail {

bool sha512_x8_supported() { return __builtin_cpu_supports("avx512f") != 0; }

namespace {

inline long long load_be64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return static_cast<long long>(__builtin_bswap64(v));
}

/// Gathers big-endian message word `i` from all eight lane blocks.
inline __m512i load_words(const std::uint8_t* const blocks[kMaxLanes], int i) {
  return _mm512_set_epi64(load_be64(blocks[7] + 8 * i), load_be64(blocks[6] + 8 * i),
                          load_be64(blocks[5] + 8 * i), load_be64(blocks[4] + 8 * i),
                          load_be64(blocks[3] + 8 * i), load_be64(blocks[2] + 8 * i),
                          load_be64(blocks[1] + 8 * i), load_be64(blocks[0] + 8 * i));
}

template <int N>
inline __m512i ror(__m512i x) {
  return _mm512_ror_epi64(x, N);
}

// Three-input bitwise ops collapse to one vpternlogq each.
inline __m512i xor3(__m512i a, __m512i b, __m512i c) {
  return _mm512_ternarylogic_epi64(a, b, c, 0x96);
}
inline __m512i ch(__m512i e, __m512i f, __m512i g) {
  return _mm512_ternarylogic_epi64(e, f, g, 0xca);  // e ? f : g
}
inline __m512i maj(__m512i a, __m512i b, __m512i c) {
  return _mm512_ternarylogic_epi64(a, b, c, 0xe8);  // majority
}

inline __m512i add(__m512i a, __m512i b) { return _mm512_add_epi64(a, b); }

}  // namespace

void sha512_x8_compress(std::uint64_t state[8][kMaxLanes],
                        const std::uint8_t* const blocks[kMaxLanes]) {
  __m512i s[8];
  for (int i = 0; i < 8; ++i) s[i] = _mm512_loadu_si512(&state[i][0]);

  __m512i w[16];
  for (int i = 0; i < 16; ++i) w[i] = load_words(blocks, i);

  __m512i a = s[0], b = s[1], c = s[2], d = s[3];
  __m512i e = s[4], f = s[5], g = s[6], h = s[7];

  for (int t = 0; t < 80; ++t) {
    if (t >= 16) {
      const __m512i w15 = w[(t - 15) & 15];
      const __m512i w2 = w[(t - 2) & 15];
      const __m512i s0 = xor3(ror<1>(w15), ror<8>(w15), _mm512_srli_epi64(w15, 7));
      const __m512i s1 = xor3(ror<19>(w2), ror<61>(w2), _mm512_srli_epi64(w2, 6));
      w[t & 15] = add(add(w[t & 15], s0), add(w[(t - 7) & 15], s1));
    }
    const __m512i kt = _mm512_set1_epi64(static_cast<long long>(kSha512K[t]));
    const __m512i sig1 = xor3(ror<14>(e), ror<18>(e), ror<41>(e));
    const __m512i t1 = add(add(h, sig1), add(ch(e, f, g), add(kt, w[t & 15])));
    const __m512i sig0 = xor3(ror<28>(a), ror<34>(a), ror<39>(a));
    const __m512i t2 = add(sig0, maj(a, b, c));
    h = g;
    g = f;
    f = e;
    e = add(d, t1);
    d = c;
    c = b;
    b = a;
    a = add(t1, t2);
  }

  s[0] = add(s[0], a);
  s[1] = add(s[1], b);
  s[2] = add(s[2], c);
  s[3] = add(s[3], d);
  s[4] = add(s[4], e);
  s[5] = add(s[5], f);
  s[6] = add(s[6], g);
  s[7] = add(s[7], h);
  for (int i = 0; i < 8; ++i) _mm512_storeu_si512(&state[i][0], s[i]);
}

}  // namespace spider::crypto::detail

#else  // stub: build can't target AVX-512

namespace spider::crypto::detail {

bool sha512_x8_supported() { return false; }
void sha512_x8_compress(std::uint64_t[8][kMaxLanes], const std::uint8_t* const[kMaxLanes]) {}

}  // namespace spider::crypto::detail

#endif

#include "crypto/random.hpp"

#include <chrono>
#include <cstring>
#include <random>

namespace spider::crypto {

Seed random_seed() {
  // std::random_device is backed by OS entropy on Linux/glibc.
  std::random_device rd;
  Seed s;
  for (std::size_t i = 0; i < s.data.size(); i += 4) {
    std::uint32_t v = rd();
    std::memcpy(s.data.data() + i, &v, 4);
  }
  return s;
}

Seed seed_from_string(std::string_view label) {
  auto digest = Sha256::hash(ByteSpan{reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
  Seed s;
  std::memcpy(s.data.data(), digest.data(), s.data.size());
  return s;
}

Digest20 CommitmentPrf::derive(char domain, std::uint64_t index) const {
  std::uint8_t suffix[9];
  suffix[0] = static_cast<std::uint8_t>(domain);
  for (int i = 0; i < 8; ++i) suffix[1 + i] = static_cast<std::uint8_t>(index >> (56 - 8 * i));
  return digest20_concat({seed_.span(), ByteSpan{suffix, sizeof(suffix)}});
}

}  // namespace spider::crypto

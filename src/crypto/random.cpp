#include "crypto/random.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>

#include "crypto/sha2_multi.hpp"

namespace spider::crypto {

Seed random_seed() {
  // std::random_device is backed by OS entropy on Linux/glibc.
  std::random_device rd;
  Seed s;
  for (std::size_t i = 0; i < s.data.size(); i += 4) {
    std::uint32_t v = rd();
    std::memcpy(s.data.data() + i, &v, 4);
  }
  return s;
}

Seed seed_from_string(std::string_view label) {
  auto digest = Sha256::hash(ByteSpan{reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
  Seed s;
  std::memcpy(s.data.data(), digest.data(), s.data.size());
  return s;
}

Digest20 CommitmentPrf::derive(char domain, std::uint64_t index) const {
  std::uint8_t suffix[9];
  suffix[0] = static_cast<std::uint8_t>(domain);
  for (int i = 0; i < 8; ++i) suffix[1 + i] = static_cast<std::uint8_t>(index >> (56 - 8 * i));
  return digest20_concat({seed_.span(), ByteSpan{suffix, sizeof(suffix)}});
}

void CommitmentPrf::bit_randomness_batch(const std::uint64_t* indices, std::size_t n,
                                         Digest20* out) const {
  // Same bytes as derive('x', index): seed || domain || big-endian index.
  constexpr std::size_t kChunk = 64;
  constexpr std::size_t kMsg = sizeof(seed_.data) + 9;
  std::uint8_t buf[kChunk * kMsg];
  ByteSpan spans[kChunk];
  std::size_t i = 0;
  while (i < n) {
    const std::size_t g = std::min(kChunk, n - i);
    for (std::size_t k = 0; k < g; ++k) {
      std::uint8_t* m = buf + k * kMsg;
      std::memcpy(m, seed_.data.data(), seed_.data.size());
      m[32] = static_cast<std::uint8_t>('x');
      const std::uint64_t index = indices[i + k];
      for (int b = 0; b < 8; ++b) m[33 + b] = static_cast<std::uint8_t>(index >> (56 - 8 * b));
      spans[k] = ByteSpan{m, kMsg};
    }
    digest20_batch(spans, g, out + i);
    i += g;
  }
}

}  // namespace spider::crypto

// Flat limb-array arithmetic kernels: the substrate under BigInt.
//
// Every kernel operates on raw little-endian arrays of 64-bit limbs with
// caller-provided output (and, for division, caller-provided scratch), so
// the owning class above can preallocate once and the hot loops never
// allocate.  Intermediate products use the compiler's 128-bit integer, so
// one schoolbook step is a single mul + add chain instead of the four
// 32x32 partial products the previous vector-of-uint32 representation
// needed.
//
// Conventions:
//  * arrays are little-endian (limb 0 is least significant);
//  * lengths count limbs and may include trailing zeros unless a kernel
//    says otherwise; nsize() computes the trimmed length;
//  * output arrays never alias inputs unless a kernel documents that it
//    is safe.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spider::crypto {

using limb_t = std::uint64_t;
// GCC/Clang 128-bit integer; __extension__ keeps -Wpedantic quiet.
__extension__ typedef unsigned __int128 dlimb_t;

constexpr std::size_t kLimbBits = 64;

namespace lk {

/// 0 when x == 0, all-ones otherwise, computed without a branch or
/// comparison — the building block of the constant-time selects in the
/// Montgomery kernels (R14 timing discipline).
inline limb_t nonzero_mask(limb_t x) {
  return limb_t{0} - ((x | (limb_t{0} - x)) >> (kLimbBits - 1));
}

/// Number of significant limbs (trailing zeros dropped); 0 for zero.
std::size_t nsize(const limb_t* a, std::size_t n);

/// Three-way compare of a[0..an) vs b[0..bn); lengths may be untrimmed.
int cmp(const limb_t* a, std::size_t an, const limb_t* b, std::size_t bn);

/// out[0..an) = a + b, requires an >= bn; returns the carry out.
/// out may alias a.
limb_t add(const limb_t* a, std::size_t an, const limb_t* b, std::size_t bn, limb_t* out);

/// out[0..an) = a - b, requires an >= bn and a >= b numerically; returns
/// the borrow out (0 when the precondition holds; 1 means underflow, which
/// mont_mul exploits for its top-limb-absorbed subtraction).  out may
/// alias a.
limb_t sub(const limb_t* a, std::size_t an, const limb_t* b, std::size_t bn, limb_t* out);

/// out[0..an+bn) = a * b (schoolbook, 128-bit accumulation).  out must not
/// alias either input; it is fully overwritten.
void mul(const limb_t* a, std::size_t an, const limb_t* b, std::size_t bn, limb_t* out);

/// out[0..2n) = a^2: cross products once, doubled, plus the diagonal —
/// roughly half the multiplies of mul(a, a).  out must not alias a.
void sqr(const limb_t* a, std::size_t n, limb_t* out);

/// Scratch limbs divmod() needs for its normalized copies.
inline std::size_t divmod_scratch(std::size_t un, std::size_t vn) { return un + 1 + vn; }

/// Knuth Algorithm D: u / v with un >= vn >= 1 and v != 0 (untrimmed
/// lengths are fine; the kernel trims).  Writes the quotient to
/// q[0..un-vn+1) (may be null to discard) and the remainder to r[0..vn)
/// (zero padded).  scratch must hold divmod_scratch(un, vn) limbs.
void divmod(const limb_t* u, std::size_t un, const limb_t* v, std::size_t vn, limb_t* q, limb_t* r,
            limb_t* scratch);

}  // namespace lk

}  // namespace spider::crypto

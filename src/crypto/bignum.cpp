#include "crypto/bignum.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(v));
    if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
  }
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes_be(ByteSpan bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // byte i (from the end) goes into limb i/4, shifted by 8*(i%4)
    std::size_t from_end = bytes.size() - 1 - i;
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(bytes[from_end]) << (8 * (i % 4));
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  std::size_t nbytes = (bit_length() + 7) / 8;
  std::size_t len = std::max(nbytes, min_len);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    std::uint8_t b = static_cast<std::uint8_t>(limbs_[i / 4] >> (8 * (i % 4)));
    out[len - 1 - i] = b;
  }
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  if (hex.empty()) return BigInt{};
  if (hex.size() % 2 != 0) {
    std::string padded = "0";
    padded += hex;
    return from_bytes_be(util::from_hex(padded));
  }
  return from_bytes_be(util::from_hex(hex));
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = util::to_hex(to_bytes_be());
  std::size_t nz = s.find_first_not_of('0');
  return s.substr(nz);
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

int BigInt::compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (*this < o) throw std::domain_error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.trim();
  return out;
}

namespace {

/// Schoolbook multiply of limb spans into `out` (out must be zeroed, sized
/// a_len + b_len).
void mul_schoolbook(const std::uint32_t* a, std::size_t a_len, const std::uint32_t* b,
                    std::size_t b_len, std::uint32_t* out) {
  for (std::size_t i = 0; i < a_len; ++i) {
    std::uint64_t carry = 0;
    std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b_len; ++j) {
      std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b_len;
    while (carry) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
}

// Karatsuba kicks in above this limb count (32 limbs = 1024 bits): below
// it the O(n^2) loop's constant factor wins.
constexpr std::size_t kKaratsubaThreshold = 32;

}  // namespace

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt{};
  const std::size_t n = std::min(limbs_.size(), o.limbs_.size());

  BigInt out;
  if (n < kKaratsubaThreshold) {
    out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    mul_schoolbook(limbs_.data(), limbs_.size(), o.limbs_.data(), o.limbs_.size(),
                   out.limbs_.data());
    out.trim();
    return out;
  }

  // Karatsuba: split both operands at half the smaller length.
  //   a = a1*B^h + a0, b = b1*B^h + b0
  //   a*b = z2*B^2h + z1*B^h + z0, with
  //   z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2.
  const std::size_t h = n / 2;
  auto split = [h](const BigInt& v) {
    BigInt lo, hi;
    lo.limbs_.assign(v.limbs_.begin(),
                     v.limbs_.begin() + static_cast<std::ptrdiff_t>(std::min(h, v.limbs_.size())));
    if (v.limbs_.size() > h) {
      hi.limbs_.assign(v.limbs_.begin() + static_cast<std::ptrdiff_t>(h), v.limbs_.end());
    }
    lo.trim();
    hi.trim();
    return std::pair{lo, hi};
  };
  auto [a0, a1] = split(*this);
  auto [b0, b1] = split(o);

  BigInt z0 = a0 * b0;
  BigInt z2 = a1 * b1;
  BigInt z1 = (a0 + a1) * (b0 + b1) - z0 - z2;

  out = shift_limbs(z2, 2 * h) + shift_limbs(z1, h) + z0;
  return out;
}

BigInt BigInt::shift_limbs(const BigInt& v, std::size_t limbs) {
  if (v.is_zero() || limbs == 0) return v;
  BigInt out;
  out.limbs_.assign(limbs, 0);
  out.limbs_.insert(out.limbs_.end(), v.limbs_.begin(), v.limbs_.end());
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt{};
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt division by zero");
  if (*this < divisor) return {BigInt{}, *this};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt{rem}};
  }

  // Knuth Algorithm D.  Normalize so the divisor's top limb has its high
  // bit set, guaranteeing the quotient-digit estimate is off by at most 2.
  int shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  BigInt u = *this << static_cast<std::size_t>(shift);
  BigInt v = divisor << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // u gets one extra high limb
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (un[j+n]*B + un[j+n-1]) / vn[n-1].
    std::uint64_t numerator = (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t q_hat = numerator / vn[n - 1];
    std::uint64_t r_hat = numerator % vn[n - 1];
    while (q_hat >= kBase ||
           q_hat * vn[n - 2] > ((r_hat << 32) | un[j + n - 2])) {
      --q_hat;
      r_hat += vn[n - 1];
      if (r_hat >= kBase) break;
    }

    // Multiply-subtract q_hat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = q_hat * vn[i] + carry;
      carry = product >> 32;
      std::int64_t sub = static_cast<std::int64_t>(un[i + j]) -
                         static_cast<std::int64_t>(product & 0xffffffffULL) - borrow;
      if (sub < 0) {
        sub += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<std::uint32_t>(sub);
    }
    std::int64_t sub = static_cast<std::int64_t>(un[j + n]) - static_cast<std::int64_t>(carry) - borrow;
    if (sub < 0) {
      // q_hat was one too large: add v back and decrement.
      sub += static_cast<std::int64_t>(kBase);
      un[j + n] = static_cast<std::uint32_t>(sub);
      --q_hat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = static_cast<std::uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<std::uint32_t>(sum);
        carry2 = sum >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + carry2);
    } else {
      un[j + n] = static_cast<std::uint32_t>(sub);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(q_hat);
  }

  q.trim();
  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> static_cast<std::size_t>(shift);
  return {q, r};
}

// ------------------------------------------------------ Montgomery engine

namespace {

/// Montgomery context for an odd modulus N: R = B^n with B = 2^32.
struct MontCtx {
  std::vector<std::uint32_t> n;  // modulus limbs
  std::uint32_t n_prime;         // -N^-1 mod B
  BigInt r2;                     // R^2 mod N

  explicit MontCtx(const BigInt& modulus) : n(modulus.limbs()) {
    // Newton iteration for inverse of n[0] mod 2^32, then negate.
    std::uint32_t inv = 1;
    for (int i = 0; i < 5; ++i) inv *= 2 - n[0] * inv;
    n_prime = static_cast<std::uint32_t>(0u - inv);
    BigInt r = BigInt{1} << (32 * n.size());
    r2 = (r * r) % modulus;
  }

  /// CIOS Montgomery multiplication: returns a*b*R^-1 mod N.
  /// a and b are limb vectors of size n.size() (zero padded).
  void mul(const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b,
           std::vector<std::uint32_t>& out) const {
    const std::size_t s = n.size();
    std::vector<std::uint64_t> t(s + 2, 0);
    for (std::size_t i = 0; i < s; ++i) {
      // t += a[i] * b
      std::uint64_t carry = 0;
      std::uint64_t ai = a[i];
      for (std::size_t j = 0; j < s; ++j) {
        std::uint64_t cur = t[j] + ai * b[j] + carry;
        t[j] = cur & 0xffffffffULL;
        carry = cur >> 32;
      }
      std::uint64_t cur = t[s] + carry;
      t[s] = cur & 0xffffffffULL;
      t[s + 1] += cur >> 32;

      // m = t[0] * n' mod B;  t += m * N; t >>= 32
      std::uint64_t m = (t[0] * n_prime) & 0xffffffffULL;
      carry = 0;
      std::uint64_t low = t[0] + m * n[0];
      carry = low >> 32;
      for (std::size_t j = 1; j < s; ++j) {
        std::uint64_t c2 = t[j] + m * n[j] + carry;
        t[j - 1] = c2 & 0xffffffffULL;
        carry = c2 >> 32;
      }
      std::uint64_t c3 = t[s] + carry;
      t[s - 1] = c3 & 0xffffffffULL;
      t[s] = t[s + 1] + (c3 >> 32);
      t[s + 1] = 0;
    }
    // Conditional subtraction of N.
    bool ge = t[s] != 0;
    if (!ge) {
      ge = true;
      for (std::size_t i = s; i-- > 0;) {
        if (t[i] != n[i]) {
          ge = t[i] > n[i];
          break;
        }
      }
    }
    out.assign(s, 0);
    if (ge) {
      std::int64_t borrow = 0;
      for (std::size_t i = 0; i < s; ++i) {
        std::int64_t diff = static_cast<std::int64_t>(t[i]) - static_cast<std::int64_t>(n[i]) - borrow;
        if (diff < 0) {
          diff += static_cast<std::int64_t>(kBase);
          borrow = 1;
        } else {
          borrow = 0;
        }
        out[i] = static_cast<std::uint32_t>(diff);
      }
    } else {
      for (std::size_t i = 0; i < s; ++i) out[i] = static_cast<std::uint32_t>(t[i]);
    }
  }
};

std::vector<std::uint32_t> padded_limbs(const BigInt& v, std::size_t size) {
  std::vector<std::uint32_t> out(v.limbs());
  out.resize(size, 0);
  return out;
}

}  // namespace

BigInt BigInt::mod_exp(const BigInt& exponent, const BigInt& modulus) const {
  if (modulus < BigInt{2}) throw std::domain_error("mod_exp: modulus must be >= 2");
  if (exponent.is_zero()) return BigInt{1} % modulus;
  BigInt base = *this % modulus;
  if (base.is_zero()) return BigInt{};

  if (!modulus.is_odd()) {
    // Rare in this codebase; plain square-and-multiply with divmod.
    BigInt result{1};
    for (std::size_t i = exponent.bit_length(); i-- > 0;) {
      result = (result * result) % modulus;
      if (exponent.bit(i)) result = (result * base) % modulus;
    }
    return result;
  }

  // Montgomery ladder with a 4-bit fixed window.
  MontCtx ctx(modulus);
  const std::size_t s = ctx.n.size();
  std::vector<std::uint32_t> base_m(s), one_m(s), acc(s), tmp(s);
  ctx.mul(padded_limbs(base, s), padded_limbs(ctx.r2, s), base_m);
  {
    BigInt r_mod = (BigInt{1} << (32 * s)) % modulus;
    one_m = padded_limbs(r_mod, s);
  }

  // Precompute base^0..base^15 in Montgomery form.
  std::vector<std::vector<std::uint32_t>> table(16);
  table[0] = one_m;
  table[1] = base_m;
  for (std::size_t i = 2; i < 16; ++i) {
    table[i].assign(s, 0);
    ctx.mul(table[i - 1], base_m, table[i]);
  }

  const std::size_t nbits = exponent.bit_length();
  const std::size_t nwindows = (nbits + 3) / 4;
  acc = one_m;
  for (std::size_t w = nwindows; w-- > 0;) {
    for (int k = 0; k < 4; ++k) {
      ctx.mul(acc, acc, tmp);
      acc.swap(tmp);
    }
    std::uint32_t window = 0;
    for (int k = 3; k >= 0; --k) {
      std::size_t bit_idx = w * 4 + static_cast<std::size_t>(k);
      window = static_cast<std::uint32_t>((window << 1) | (bit_idx < nbits && exponent.bit(bit_idx) ? 1 : 0));
    }
    if (window != 0) {
      ctx.mul(acc, table[window], tmp);
      acc.swap(tmp);
    }
  }

  // Convert out of Montgomery form: multiply by 1.
  std::vector<std::uint32_t> unit(s, 0);
  unit[0] = 1;
  ctx.mul(acc, unit, tmp);
  BigInt result;
  result.limbs_ = tmp;
  result.trim();
  return result;
}

BigInt BigInt::mod_inverse(const BigInt& modulus) const {
  // Extended Euclid tracking coefficients of `this` with explicit signs.
  if (modulus < BigInt{2}) throw std::domain_error("mod_inverse: modulus must be >= 2");
  BigInt r0 = modulus;
  BigInt r1 = *this % modulus;
  if (r1.is_zero()) throw std::domain_error("mod_inverse: not invertible");
  BigInt t0{}, t1{1};
  bool t0_neg = false, t1_neg = false;

  while (!r1.is_zero()) {
    auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q*t1, with sign tracking
    BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }
  if (r0 != BigInt{1}) throw std::domain_error("mod_inverse: not invertible");
  BigInt inv = t0 % modulus;
  if (t0_neg && !inv.is_zero()) inv = modulus - inv;
  return inv;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

BigInt BigInt::random_below(const BigInt& bound, util::SplitMix64& rng) {
  if (bound.is_zero()) throw std::domain_error("random_below: bound must be > 0");
  const std::size_t bits = bound.bit_length();
  for (;;) {
    BigInt candidate;
    candidate.limbs_.assign((bits + 31) / 32, 0);
    for (auto& limb : candidate.limbs_) limb = static_cast<std::uint32_t>(rng.next());
    // Mask the top limb down to the right bit count.
    std::size_t top_bits = bits % 32;
    if (top_bits != 0) candidate.limbs_.back() &= (1u << top_bits) - 1;
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(std::size_t bits, util::SplitMix64& rng) {
  if (bits == 0) return BigInt{};
  BigInt out;
  out.limbs_.assign((bits + 31) / 32, 0);
  for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.next());
  std::size_t top = (bits - 1) % 32;
  out.limbs_.back() &= (top == 31) ? 0xffffffffu : ((1u << (top + 1)) - 1);
  out.limbs_.back() |= 1u << top;  // force exact bit length
  out.trim();
  return out;
}

// ------------------------------------------------------------- primality

namespace {
constexpr std::uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,
    67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151,
    157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
    257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349};
}

bool is_probable_prime(const BigInt& n, int rounds, util::SplitMix64& rng) {
  if (n < BigInt{2}) return false;
  for (std::uint32_t p : kSmallPrimes) {
    BigInt bp{p};
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^r.
  BigInt n_minus_1 = n - BigInt{1};
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  BigInt two{2};
  for (int round = 0; round < rounds; ++round) {
    BigInt a = BigInt{2} + BigInt::random_below(n - BigInt{4}, rng);
    BigInt x = a.mod_exp(d, n);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = x.mod_exp(two, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, util::SplitMix64& rng) {
  if (bits < 8) throw std::domain_error("generate_prime: need at least 8 bits");
  for (;;) {
    BigInt candidate = BigInt::random_bits(bits, rng);
    // Force odd.
    if (!candidate.is_odd()) candidate = candidate + BigInt{1};
    if (candidate.bit_length() != bits) continue;
    if (is_probable_prime(candidate, 20, rng)) return candidate;
  }
}

}  // namespace spider::crypto

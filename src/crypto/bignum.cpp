#include "crypto/bignum.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "crypto/mont.hpp"

namespace spider::crypto {

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_limbs(std::vector<limb_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.trim();
  return out;
}

BigInt BigInt::from_bytes_be(ByteSpan bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // byte i (from the end) goes into limb i/8, shifted by 8*(i%8)
    std::size_t from_end = bytes.size() - 1 - i;
    out.limbs_[i / 8] |= static_cast<limb_t>(bytes[from_end]) << (8 * (i % 8));
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  std::size_t nbytes = (bit_length() + 7) / 8;
  std::size_t len = std::max(nbytes, min_len);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    std::uint8_t b = static_cast<std::uint8_t>(limbs_[i / 8] >> (8 * (i % 8)));
    out[len - 1 - i] = b;
  }
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  if (hex.empty()) return BigInt{};
  if (hex.size() % 2 != 0) {
    std::string padded = "0";
    padded += hex;
    return from_bytes_be(util::from_hex(padded));
  }
  return from_bytes_be(util::from_hex(hex));
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = util::to_hex(to_bytes_be());
  std::size_t nz = s.find_first_not_of('0');
  return s.substr(nz);
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return limbs_.size() * kLimbBits - static_cast<std::size_t>(std::countl_zero(limbs_.back()));
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

int BigInt::compare(const BigInt& other) const {
  return lk::cmp(limbs_.data(), limbs_.size(), other.limbs_.data(), other.limbs_.size());
}

BigInt BigInt::operator+(const BigInt& o) const {
  const BigInt& big = limbs_.size() >= o.limbs_.size() ? *this : o;
  const BigInt& small = limbs_.size() >= o.limbs_.size() ? o : *this;
  BigInt out;
  out.limbs_.assign(big.limbs_.size() + 1, 0);
  limb_t carry = lk::add(big.limbs_.data(), big.limbs_.size(), small.limbs_.data(),
                         small.limbs_.size(), out.limbs_.data());
  out.limbs_[big.limbs_.size()] = carry;
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (*this < o) throw std::domain_error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.assign(limbs_.size(), 0);
  lk::sub(limbs_.data(), limbs_.size(), o.limbs_.data(), o.limbs_.size(), out.limbs_.data());
  out.trim();
  return out;
}

namespace {

// Karatsuba kicks in above this limb count (32 limbs = 2048 bits): below
// it the flat 128-bit schoolbook loop's constant factor wins.
constexpr std::size_t kKaratsubaThreshold = 32;

}  // namespace

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt{};
  const std::size_t n = std::min(limbs_.size(), o.limbs_.size());

  BigInt out;
  if (n < kKaratsubaThreshold) {
    out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    if (this == &o) {
      lk::sqr(limbs_.data(), limbs_.size(), out.limbs_.data());
    } else {
      lk::mul(limbs_.data(), limbs_.size(), o.limbs_.data(), o.limbs_.size(), out.limbs_.data());
    }
    out.trim();
    return out;
  }

  // Karatsuba: split both operands at half the smaller length.
  //   a = a1*B^h + a0, b = b1*B^h + b0
  //   a*b = z2*B^2h + z1*B^h + z0, with
  //   z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2.
  const std::size_t h = n / 2;
  auto split = [h](const BigInt& v) {
    BigInt lo, hi;
    lo.limbs_.assign(v.limbs_.begin(),
                     v.limbs_.begin() + static_cast<std::ptrdiff_t>(std::min(h, v.limbs_.size())));
    if (v.limbs_.size() > h) {
      hi.limbs_.assign(v.limbs_.begin() + static_cast<std::ptrdiff_t>(h), v.limbs_.end());
    }
    lo.trim();
    hi.trim();
    return std::pair{lo, hi};
  };
  auto [a0, a1] = split(*this);
  auto [b0, b1] = split(o);

  BigInt z0 = a0 * b0;
  BigInt z2 = a1 * b1;
  BigInt z1 = (a0 + a1) * (b0 + b1) - z0 - z2;

  out = shift_limbs(z2, 2 * h) + shift_limbs(z1, h) + z0;
  return out;
}

BigInt BigInt::shift_limbs(const BigInt& v, std::size_t limbs) {
  if (v.is_zero() || limbs == 0) return v;
  BigInt out;
  out.limbs_.assign(limbs, 0);
  out.limbs_.insert(out.limbs_.end(), v.limbs_.begin(), v.limbs_.end());
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / kLimbBits;
  const std::size_t bit_shift = bits % kLimbBits;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  if (bit_shift == 0) {
    std::copy(limbs_.begin(), limbs_.end(), out.limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift));
  } else {
    limb_t carry = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      out.limbs_[i + limb_shift] = (limbs_[i] << bit_shift) | carry;
      carry = limbs_[i] >> (kLimbBits - bit_shift);
    }
    out.limbs_[limbs_.size() + limb_shift] = carry;
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) return BigInt{};
  const std::size_t bit_shift = bits % kLimbBits;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    limb_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= limbs_[i + limb_shift + 1] << (kLimbBits - bit_shift);
    }
    out.limbs_[i] = v;
  }
  out.trim();
  return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt division by zero");
  if (*this < divisor) return {BigInt{}, *this};

  const std::size_t un = limbs_.size();
  const std::size_t vn = divisor.limbs_.size();
  BigInt q, r;
  q.limbs_.assign(un - vn + 1, 0);
  r.limbs_.assign(vn, 0);
  std::vector<limb_t> scratch(lk::divmod_scratch(un, vn));
  lk::divmod(limbs_.data(), un, divisor.limbs_.data(), vn, q.limbs_.data(), r.limbs_.data(),
             scratch.data());
  q.trim();
  r.trim();
  return {q, r};
}

BigInt BigInt::mod_exp(const BigInt& exponent, const BigInt& modulus) const {
  if (modulus < BigInt{2}) throw std::domain_error("mod_exp: modulus must be >= 2");
  if (exponent.is_zero()) return BigInt{1} % modulus;
  BigInt base = *this % modulus;
  if (base.is_zero()) return BigInt{};

  if (!modulus.is_odd()) {
    // Rare in this codebase; plain square-and-multiply with divmod.
    BigInt result{1};
    for (std::size_t i = exponent.bit_length(); i-- > 0;) {
      result = (result * result) % modulus;
      if (exponent.bit(i)) result = (result * base) % modulus;
    }
    return result;
  }

  return MontCtx(modulus).exp(base, exponent);
}

BigInt BigInt::mod_exp_ct(const BigInt& exponent, const BigInt& modulus) const {
  // No early exits on the exponent or the reduced base: zero and one are
  // as secret as any other exponent value here.
  return MontCtx(modulus).exp_ct(*this, exponent);
}

BigInt BigInt::mod_inverse(const BigInt& modulus) const {
  // Extended Euclid tracking coefficients of `this` with explicit signs.
  if (modulus < BigInt{2}) throw std::domain_error("mod_inverse: modulus must be >= 2");
  BigInt r0 = modulus;
  BigInt r1 = *this % modulus;
  if (r1.is_zero()) throw std::domain_error("mod_inverse: not invertible");
  BigInt t0{}, t1{1};
  bool t0_neg = false, t1_neg = false;

  while (!r1.is_zero()) {
    auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q*t1, with sign tracking
    BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }
  if (r0 != BigInt{1}) throw std::domain_error("mod_inverse: not invertible");
  BigInt inv = t0 % modulus;
  if (t0_neg && !inv.is_zero()) inv = modulus - inv;
  return inv;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

namespace {

/// Packs 32-bit words (one rng.next() each, low half kept) into 64-bit
/// limbs.  Draws in exactly the order the original uint32-limb
/// representation did, so every caller that was seeded deterministically —
/// rsa_generate above all — still derives byte-identical keys.
std::vector<limb_t> draw_words32(std::size_t bits, util::SplitMix64& rng) {
  const std::size_t nwords = (bits + 31) / 32;
  std::vector<limb_t> limbs((nwords + 1) / 2, 0);
  for (std::size_t w = 0; w < nwords; ++w) {
    limb_t word = static_cast<std::uint32_t>(rng.next());
    limbs[w / 2] |= word << (32 * (w % 2));
  }
  return limbs;
}

}  // namespace

BigInt BigInt::random_below(const BigInt& bound, util::SplitMix64& rng) {
  if (bound.is_zero()) throw std::domain_error("random_below: bound must be > 0");
  const std::size_t bits = bound.bit_length();
  for (;;) {
    BigInt candidate;
    candidate.limbs_ = draw_words32(bits, rng);
    // Mask the top word down to the right bit count.
    std::size_t top_bits = bits % 32;
    if (top_bits != 0) {
      const std::size_t top_word = (bits + 31) / 32 - 1;
      limb_t mask = (limb_t{1} << top_bits) - 1;
      limb_t keep = top_word % 2 == 0 ? (mask | (limb_t{0xffffffffu} << 32))
                                      : ((mask << 32) | 0xffffffffu);
      candidate.limbs_[top_word / 2] &= keep;
    }
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(std::size_t bits, util::SplitMix64& rng) {
  if (bits == 0) return BigInt{};
  BigInt out;
  out.limbs_ = draw_words32(bits, rng);
  // Mask above bit `bits-1`, then force the top bit for an exact length.
  const std::size_t top = bits - 1;
  const std::size_t top_limb = top / kLimbBits;
  const std::size_t top_bit = top % kLimbBits;
  out.limbs_[top_limb] &= (top_bit == kLimbBits - 1) ? ~limb_t{0}
                                                     : ((limb_t{1} << (top_bit + 1)) - 1);
  out.limbs_[top_limb] |= limb_t{1} << top_bit;
  out.limbs_.resize(top_limb + 1);
  out.trim();
  return out;
}

// ------------------------------------------------------------- primality

namespace {
constexpr std::uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,
    67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151,
    157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
    257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349};
}

bool is_probable_prime(const BigInt& n, int rounds, util::SplitMix64& rng) {
  if (n < BigInt{2}) return false;
  for (std::uint32_t p : kSmallPrimes) {
    BigInt bp{p};
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^r.
  BigInt n_minus_1 = n - BigInt{1};
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  BigInt two{2};
  for (int round = 0; round < rounds; ++round) {
    BigInt a = BigInt{2} + BigInt::random_below(n - BigInt{4}, rng);
    BigInt x = a.mod_exp(d, n);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = x.mod_exp(two, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, util::SplitMix64& rng) {
  if (bits < 8) throw std::domain_error("generate_prime: need at least 8 bits");
  for (;;) {
    BigInt candidate = BigInt::random_bits(bits, rng);
    // Force odd.
    if (!candidate.is_odd()) candidate = candidate + BigInt{1};
    if (candidate.bit_length() != bits) continue;
    if (is_probable_prime(candidate, 20, rng)) return candidate;
  }
}

}  // namespace spider::crypto

// Arbitrary-precision unsigned integers, built from scratch as the substrate
// for RSA-1024 (paper §7.1).  Non-negative values only: RSA needs nothing
// signed, and the extended-Euclid routine tracks signs locally.
//
// Representation: little-endian vector of 64-bit limbs with no trailing
// zero limbs (zero is the empty vector).  BigInt is a thin owning class
// over the flat limb kernels in crypto/limb.hpp: schoolbook steps
// accumulate into 128-bit words, division is Knuth's Algorithm D, and
// modular exponentiation delegates to the Montgomery context in
// crypto/mont.hpp (CIOS with a 4-bit fixed window) for odd moduli.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/limb.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace spider::crypto {

using util::Bytes;
using util::ByteSpan;

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal interop is intended

  /// Big-endian byte import/export (the format used inside signatures).
  static BigInt from_bytes_be(ByteSpan bytes);
  /// Exports big-endian, left-padded with zeros to at least `min_len` bytes.
  Bytes to_bytes_be(std::size_t min_len = 0) const;

  static BigInt from_hex(std::string_view hex);
  std::string to_hex() const;

  /// Adopts a little-endian limb vector (trailing zeros are trimmed).
  static BigInt from_limbs(std::vector<limb_t> limbs);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  /// Number of significant bits; 0 for zero.
  std::size_t bit_length() const;
  /// Value of bit `i` (0 = least significant).
  bool bit(std::size_t i) const;

  // Comparisons.
  int compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const BigInt& o) const { return !(*this == o); }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(o) >= 0; }

  // Arithmetic (operands must satisfy a >= b for subtraction; throws else).
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  struct DivMod;  // defined after the class (members need the complete type)
  /// Knuth Algorithm D. Throws std::domain_error on division by zero.
  DivMod divmod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;

  /// (this ^ exponent) mod modulus.  Uses Montgomery for odd moduli and a
  /// plain square-and-multiply fallback otherwise.  modulus must be >= 2.
  /// Variable-time in the exponent — public exponents only.
  BigInt mod_exp(const BigInt& exponent, const BigInt& modulus) const;

  /// Constant-time mod_exp for secret exponents (MontCtx::exp_ct): the
  /// ladder length and memory access pattern depend only on the modulus
  /// width.  Requires an odd modulus >= 3 and exponent < 2^(64*width);
  /// both hold for the CRT halves of RSA signing, its only caller.
  // spider-taint: secret exponent
  BigInt mod_exp_ct(const BigInt& exponent, const BigInt& modulus) const;

  /// Modular inverse; throws std::domain_error when gcd(this, modulus) != 1.
  BigInt mod_inverse(const BigInt& modulus) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Uniform value in [0, bound) driven by the supplied deterministic rng.
  static BigInt random_below(const BigInt& bound, util::SplitMix64& rng);
  /// Random integer with exactly `bits` bits (top bit set).
  static BigInt random_bits(std::size_t bits, util::SplitMix64& rng);

  const std::vector<limb_t>& limbs() const { return limbs_; }

 private:
  void trim();
  static BigInt shift_limbs(const BigInt& v, std::size_t limbs);

  std::vector<limb_t> limbs_;  // little-endian, no trailing zeros
};

struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt BigInt::operator/(const BigInt& o) const { return divmod(o).quotient; }
inline BigInt BigInt::operator%(const BigInt& o) const { return divmod(o).remainder; }

/// Miller–Rabin with `rounds` random bases (after small-prime trial division).
bool is_probable_prime(const BigInt& n, int rounds, util::SplitMix64& rng);

/// Generates a random prime with exactly `bits` bits.
BigInt generate_prime(std::size_t bits, util::SplitMix64& rng);

}  // namespace spider::crypto

// Internal SHA-512 kernel interface shared by the scalar implementation
// (sha2.cpp) and the multi-lane backends (sha2_multi_*.cpp).  Not part of
// the public crypto API.
//
// Lane layout: state is word-major — state[w][l] is word w of lane l — so
// a backend loads one SIMD vector per state word with a single unaligned
// load.  Rows are fixed at kMaxLanes wide; a 4-lane backend simply uses
// the first four columns.  `blocks[l]` points at lane l's next 128-byte
// message block.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spider::crypto::detail {

inline constexpr std::size_t kMaxLanes = 8;

extern const std::uint64_t kSha512K[80];
extern const std::uint64_t kSha512Iv[8];

/// True when the running CPU (and this build) can execute the 4-lane
/// AVX2 kernel.
bool sha512_x4_supported();
void sha512_x4_compress(std::uint64_t state[8][kMaxLanes],
                        const std::uint8_t* const blocks[kMaxLanes]);

/// True when the running CPU (and this build) can execute the 8-lane
/// AVX-512 kernel.
bool sha512_x8_supported();
void sha512_x8_compress(std::uint64_t state[8][kMaxLanes],
                        const std::uint8_t* const blocks[kMaxLanes]);

}  // namespace spider::crypto::detail

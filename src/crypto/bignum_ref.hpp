// Retained reference implementations for the differential test battery and
// the "vs seed" benchmark baseline.  Nothing here is reached by production
// code; tests/test_crypto_diff.cpp and the crypto bench scenario are the
// only consumers.
//
// Two independent engines, chosen so that a bug in the fast path would
// have to be reproduced by structurally different code to go unnoticed:
//
//  * ref32 — the repository's original bignum engine, verbatim: 32-bit
//    limb vectors, 64-bit accumulation, per-call CIOS Montgomery with a
//    4-bit window.  Fast enough to differentially check full RSA-1024
//    operations, and the honest baseline for the "CRT + Montgomery vs
//    seed" speedup claims in BENCH_crypto.json.
//
//  * ref16 — a deliberately naive engine over 16-bit digits: schoolbook
//    multiply with 32-bit accumulation and bit-at-a-time shift-subtract
//    division.  Shares no carry-chain structure with either the 64-bit
//    kernels or ref32; used on small-to-medium operands where O(n^2 * bits)
//    is affordable.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bignum.hpp"
#include "crypto/rsa.hpp"

namespace spider::crypto::ref {

// ---------------------------------------------------------------- ref16

/// a * b via 16-bit-digit schoolbook.
BigInt mul_simple(const BigInt& a, const BigInt& b);

/// a / b and a % b via binary shift-subtract long division.
BigInt::DivMod divmod_simple(const BigInt& a, const BigInt& b);

/// base^exponent mod modulus via square-and-multiply over divmod_simple.
/// Affordable only for operands up to a few hundred bits.
BigInt mod_exp_simple(const BigInt& base, const BigInt& exponent, const BigInt& modulus);

// ---------------------------------------------------------------- ref32

/// base^exponent mod modulus with the original 32-bit Montgomery engine
/// (odd modulus) or plain square-and-multiply (even modulus).
BigInt mod_exp32(const BigInt& base, const BigInt& exponent, const BigInt& modulus);

/// PKCS#1 v1.5 / SHA-512 signature exactly as the seed produced it: CRT
/// recombination over two ref32 exponentiations.
Bytes rsa_sign_seed(const RsaPrivateKey& key, ByteSpan message);

/// The same signature without CRT: one full-width m^d mod n via ref32.
Bytes rsa_sign_nocrt(const RsaPrivateKey& key, ByteSpan message);

/// Signature verification over ref32 (s^e mod n, constant-time compare).
bool rsa_verify_seed(const RsaPublicKey& key, ByteSpan message, ByteSpan signature);

}  // namespace spider::crypto::ref

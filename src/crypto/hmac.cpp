#include "crypto/hmac.hpp"

#include <cstring>

namespace spider::crypto {

HmacSha512::HmacSha512(ByteSpan key) {
  std::array<std::uint8_t, 128> block{};
  if (key.size() > block.size()) {
    auto hashed = Sha512::hash(key);
    std::memcpy(block.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 128> ipad_key{};
  for (std::size_t i = 0; i < block.size(); ++i) {
    ipad_key[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }
  inner_.update(ByteSpan{ipad_key.data(), ipad_key.size()});
}

HmacSha512::Digest HmacSha512::finish() {
  auto inner_digest = inner_.finish();
  Sha512 outer;
  outer.update(ByteSpan{opad_key_.data(), opad_key_.size()});
  outer.update(ByteSpan{inner_digest.data(), inner_digest.size()});
  return outer.finish();
}

HmacSha512::Digest HmacSha512::mac(ByteSpan key, ByteSpan message) {
  HmacSha512 hmac(key);
  hmac.update(message);
  return hmac.finish();
}

util::Digest20 HmacSha512::mac20(ByteSpan key, ByteSpan message) {
  auto full = mac(key, message);
  util::Digest20 out{};
  std::memcpy(out.data(), full.data(), out.size());
  return out;
}

}  // namespace spider::crypto

#include "crypto/ct.hpp"

namespace spider::crypto {

bool constant_time_equal(util::ByteSpan a, util::ByteSpan b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace spider::crypto

// Montgomery arithmetic for odd moduli: the engine behind BigInt::mod_exp
// and RSA-CRT signing.
//
// A context caches everything that depends only on the modulus — the limb
// array, n0 = -N^-1 mod 2^64, R mod N and R^2 mod N — so repeated
// exponentiations (the two CRT halves of every signature, the e=65537
// ladder of every verify) pay the divmod-based setup once.  The hot path
// is CIOS Montgomery multiplication over flat limb arrays with
// caller-provided scratch: no allocation per multiply.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/bignum.hpp"
#include "crypto/limb.hpp"

namespace spider::crypto {

class MontCtx {
 public:
  /// Builds the context for an odd modulus >= 3; throws std::domain_error
  /// otherwise.
  explicit MontCtx(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }
  /// Limb width s of the modulus: every raw kernel below works on arrays
  /// of exactly s limbs (zero padded), with R = 2^(64*s).
  std::size_t width() const { return n_.size(); }
  /// Scratch limbs the raw kernels need (mont_sqr's full 2s-limb square
  /// dominates mont_mul's single fused-CIOS accumulator row).
  std::size_t scratch_size() const { return 2 * n_.size() + 1; }

  /// out = a*b*R^-1 mod N (fused CIOS: each outer row interleaves the
  /// a[i]*b partial product with its Montgomery reduction, one pass over
  /// the accumulator).  a and b must be in [0, N) — the single-carry-limb
  /// bound t < 2N relies on it.  a, b, out are width() limbs; scratch is
  /// scratch_size() limbs.  out may alias a or b.
  void mont_mul(const limb_t* a, const limb_t* b, limb_t* out, limb_t* scratch) const;

  /// out = a^2*R^-1 mod N for a in [0, N): lk::sqr (half the cross
  /// products) followed by a separate Montgomery reduction pass.  Faster
  /// than mont_mul(a, a, ...) — exponentiation is mostly squarings.
  void mont_sqr(const limb_t* a, limb_t* out, limb_t* scratch) const;

  /// out = a*R mod N for a in [0, N): multiply by the cached R^2.
  void to_mont(const limb_t* a, limb_t* out, limb_t* scratch) const;
  /// out = a*R^-1 mod N: multiply by 1.
  void from_mont(const limb_t* a, limb_t* out, limb_t* scratch) const;

  /// base^exponent mod N with plain-domain input and output; base is
  /// reduced mod N first.  4-bit fixed window over one preallocated
  /// scratch block.  Variable-time in the exponent (skips zero windows,
  /// sizes the ladder by the exponent's bit length) — public exponents
  /// only; signing uses exp_ct.
  BigInt exp(const BigInt& base, const BigInt& exponent) const;

  /// Constant-time variant for secret exponents (the CRT halves of RSA
  /// signing): the window ladder is sized by the public modulus width,
  /// every window is gathered from the table with a masked read of all 16
  /// entries, and every iteration multiplies unconditionally.  Requires
  /// exponent < 2^(64*width()); roughly 16*s windows regardless of the
  /// exponent's actual length, so only use it where the exponent is
  /// secret.
  // spider-taint: secret exponent
  BigInt exp_ct(const BigInt& base, const BigInt& exponent) const;

 private:
  BigInt modulus_;
  std::vector<limb_t> n_;    // modulus, width() limbs
  std::vector<limb_t> rr_;   // R^2 mod N
  std::vector<limb_t> one_;  // R mod N (Montgomery form of 1)
  limb_t n0_ = 0;            // -N^-1 mod 2^64
};

}  // namespace spider::crypto

#include "crypto/limb.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace spider::crypto::lk {

std::size_t nsize(const limb_t* a, std::size_t n) {
  while (n > 0 && a[n - 1] == 0) --n;
  return n;
}

int cmp(const limb_t* a, std::size_t an, const limb_t* b, std::size_t bn) {
  an = nsize(a, an);
  bn = nsize(b, bn);
  if (an != bn) return an < bn ? -1 : 1;
  for (std::size_t i = an; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

limb_t add(const limb_t* a, std::size_t an, const limb_t* b, std::size_t bn, limb_t* out) {
  limb_t carry = 0;
  std::size_t i = 0;
  for (; i < bn; ++i) {
    dlimb_t cur = static_cast<dlimb_t>(a[i]) + b[i] + carry;
    out[i] = static_cast<limb_t>(cur);
    carry = static_cast<limb_t>(cur >> kLimbBits);
  }
  for (; i < an; ++i) {
    dlimb_t cur = static_cast<dlimb_t>(a[i]) + carry;
    out[i] = static_cast<limb_t>(cur);
    carry = static_cast<limb_t>(cur >> kLimbBits);
  }
  return carry;
}

limb_t sub(const limb_t* a, std::size_t an, const limb_t* b, std::size_t bn, limb_t* out) {
  limb_t borrow = 0;
  std::size_t i = 0;
  for (; i < bn; ++i) {
    dlimb_t cur = static_cast<dlimb_t>(a[i]) - b[i] - borrow;
    out[i] = static_cast<limb_t>(cur);
    borrow = static_cast<limb_t>(cur >> kLimbBits) & 1;
  }
  for (; i < an; ++i) {
    dlimb_t cur = static_cast<dlimb_t>(a[i]) - borrow;
    out[i] = static_cast<limb_t>(cur);
    borrow = static_cast<limb_t>(cur >> kLimbBits) & 1;
  }
  return borrow;
}

void mul(const limb_t* a, std::size_t an, const limb_t* b, std::size_t bn, limb_t* out) {
  std::fill(out, out + an + bn, limb_t{0});
  for (std::size_t i = 0; i < an; ++i) {
    limb_t carry = 0;
    const dlimb_t ai = a[i];
    for (std::size_t j = 0; j < bn; ++j) {
      dlimb_t cur = static_cast<dlimb_t>(out[i + j]) + ai * b[j] + carry;
      out[i + j] = static_cast<limb_t>(cur);
      carry = static_cast<limb_t>(cur >> kLimbBits);
    }
    out[i + bn] = carry;  // untouched by earlier rows, so plain assignment
  }
}

void sqr(const limb_t* a, std::size_t n, limb_t* out) {
  std::fill(out, out + 2 * n, limb_t{0});
  // Cross products a[i]*a[j] for i < j, accumulated once.
  for (std::size_t i = 0; i < n; ++i) {
    limb_t carry = 0;
    const dlimb_t ai = a[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      dlimb_t cur = static_cast<dlimb_t>(out[i + j]) + ai * a[j] + carry;
      out[i + j] = static_cast<limb_t>(cur);
      carry = static_cast<limb_t>(cur >> kLimbBits);
    }
    out[i + n] = carry;
  }
  // Double the cross products (shift left one bit)...
  limb_t top = 0;
  for (std::size_t k = 0; k < 2 * n; ++k) {
    limb_t next = out[k] >> (kLimbBits - 1);
    out[k] = (out[k] << 1) | top;
    top = next;
  }
  // ...and add the diagonal a[i]^2 at position 2i.
  limb_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    dlimb_t cur = static_cast<dlimb_t>(out[2 * i]) + static_cast<dlimb_t>(a[i]) * a[i] + carry;
    out[2 * i] = static_cast<limb_t>(cur);
    dlimb_t hi = static_cast<dlimb_t>(out[2 * i + 1]) + static_cast<limb_t>(cur >> kLimbBits);
    out[2 * i + 1] = static_cast<limb_t>(hi);
    carry = static_cast<limb_t>(hi >> kLimbBits);
  }
}

void divmod(const limb_t* u, std::size_t un, const limb_t* v, std::size_t vn, limb_t* q, limb_t* r,
            limb_t* scratch) {
  const std::size_t un_raw = un;
  const std::size_t vn_raw = vn;
  un = nsize(u, un);
  vn = nsize(v, vn);
  if (vn == 0) throw std::domain_error("lk::divmod: division by zero");

  std::fill(r, r + vn_raw, limb_t{0});
  if (q != nullptr && un_raw >= vn_raw) std::fill(q, q + (un_raw - vn_raw + 1), limb_t{0});
  if (cmp(u, un, v, vn) < 0) {
    std::copy(u, u + un, r);
    return;
  }

  // Single-limb divisor: one pass of 128/64 division.
  if (vn == 1) {
    const limb_t d = v[0];
    limb_t rem = 0;
    for (std::size_t i = un; i-- > 0;) {
      dlimb_t cur = (static_cast<dlimb_t>(rem) << kLimbBits) | u[i];
      if (q != nullptr) q[i] = static_cast<limb_t>(cur / d);
      rem = static_cast<limb_t>(cur % d);
    }
    r[0] = rem;
    return;
  }

  // Normalize so the divisor's top limb has its high bit set, which bounds
  // the quotient-digit estimate error at 2 (Knuth TAOCP 4.3.1, Alg. D).
  const int shift = std::countl_zero(v[vn - 1]);
  limb_t* un_ = scratch;            // un + 1 limbs
  limb_t* vn_ = scratch + un + 1;   // vn limbs
  if (shift == 0) {
    std::copy(u, u + un, un_);
    un_[un] = 0;
    std::copy(v, v + vn, vn_);
  } else {
    limb_t carry = 0;
    for (std::size_t i = 0; i < un; ++i) {
      un_[i] = (u[i] << shift) | carry;
      carry = u[i] >> (kLimbBits - shift);
    }
    un_[un] = carry;
    carry = 0;
    for (std::size_t i = 0; i < vn; ++i) {
      vn_[i] = (v[i] << shift) | carry;
      carry = v[i] >> (kLimbBits - shift);
    }
  }

  const std::size_t m = un - vn;
  const limb_t vhigh = vn_[vn - 1];
  const limb_t vnext = vn_[vn - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (un_[j+vn]*B + un_[j+vn-1]) / vhigh, clamped to B-1.
    dlimb_t numerator = (static_cast<dlimb_t>(un_[j + vn]) << kLimbBits) | un_[j + vn - 1];
    dlimb_t q_hat = numerator / vhigh;
    dlimb_t r_hat = numerator % vhigh;
    while (q_hat >> kLimbBits != 0 ||
           q_hat * vnext > ((r_hat << kLimbBits) | un_[j + vn - 2])) {
      --q_hat;
      r_hat += vhigh;
      if (r_hat >> kLimbBits != 0) break;
    }
    limb_t qh = static_cast<limb_t>(q_hat);

    // Multiply-subtract q_hat * v from un_[j .. j+vn].
    limb_t mul_carry = 0;
    limb_t borrow = 0;
    for (std::size_t i = 0; i < vn; ++i) {
      dlimb_t p = static_cast<dlimb_t>(qh) * vn_[i] + mul_carry;
      mul_carry = static_cast<limb_t>(p >> kLimbBits);
      dlimb_t d = static_cast<dlimb_t>(un_[i + j]) - static_cast<limb_t>(p) - borrow;
      un_[i + j] = static_cast<limb_t>(d);
      borrow = static_cast<limb_t>(d >> kLimbBits) & 1;
    }
    dlimb_t d = static_cast<dlimb_t>(un_[j + vn]) - mul_carry - borrow;
    if ((d >> kLimbBits) != 0) {
      // q_hat was one too large: add v back and decrement.
      un_[j + vn] = static_cast<limb_t>(d);
      --qh;
      limb_t carry = add(un_ + j, vn, vn_, vn, un_ + j);
      un_[j + vn] += carry;
    } else {
      un_[j + vn] = static_cast<limb_t>(d);
    }
    if (q != nullptr) q[j] = qh;
  }

  // Denormalize the remainder.
  if (shift == 0) {
    std::copy(un_, un_ + vn, r);
  } else {
    for (std::size_t i = 0; i < vn; ++i) {
      r[i] = un_[i] >> shift;
      if (i + 1 < vn) r[i] |= un_[i + 1] << (kLimbBits - shift);
    }
  }
}

}  // namespace spider::crypto::lk

// 4-lane SHA-512 compression over AVX2: one 256-bit vector holds the same
// state word across four independent messages.  This TU is the only one
// compiled with -mavx2; without that it compiles to a stub.
#include "crypto/sha2_kernel.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

namespace spider::crypto::detail {

bool sha512_x4_supported() { return __builtin_cpu_supports("avx2") != 0; }

namespace {

inline long long load_be64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return static_cast<long long>(__builtin_bswap64(v));
}

/// Gathers big-endian message word `i` from the first four lane blocks.
inline __m256i load_words(const std::uint8_t* const blocks[kMaxLanes], int i) {
  return _mm256_set_epi64x(load_be64(blocks[3] + 8 * i), load_be64(blocks[2] + 8 * i),
                           load_be64(blocks[1] + 8 * i), load_be64(blocks[0] + 8 * i));
}

template <int N>
inline __m256i ror(__m256i x) {
  return _mm256_or_si256(_mm256_srli_epi64(x, N), _mm256_slli_epi64(x, 64 - N));
}

inline __m256i xor3(__m256i a, __m256i b, __m256i c) {
  return _mm256_xor_si256(_mm256_xor_si256(a, b), c);
}
inline __m256i ch(__m256i e, __m256i f, __m256i g) {
  // g ^ (e & (f ^ g)) == e ? f : g
  return _mm256_xor_si256(g, _mm256_and_si256(e, _mm256_xor_si256(f, g)));
}
inline __m256i maj(__m256i a, __m256i b, __m256i c) {
  const __m256i ab = _mm256_or_si256(a, b);
  return _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(c, ab));
}

inline __m256i add(__m256i a, __m256i b) { return _mm256_add_epi64(a, b); }

}  // namespace

void sha512_x4_compress(std::uint64_t state[8][kMaxLanes],
                        const std::uint8_t* const blocks[kMaxLanes]) {
  __m256i s[8];
  for (int i = 0; i < 8; ++i) {
    s[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&state[i][0]));
  }

  __m256i w[16];
  for (int i = 0; i < 16; ++i) w[i] = load_words(blocks, i);

  __m256i a = s[0], b = s[1], c = s[2], d = s[3];
  __m256i e = s[4], f = s[5], g = s[6], h = s[7];

  for (int t = 0; t < 80; ++t) {
    if (t >= 16) {
      const __m256i w15 = w[(t - 15) & 15];
      const __m256i w2 = w[(t - 2) & 15];
      const __m256i s0 = xor3(ror<1>(w15), ror<8>(w15), _mm256_srli_epi64(w15, 7));
      const __m256i s1 = xor3(ror<19>(w2), ror<61>(w2), _mm256_srli_epi64(w2, 6));
      w[t & 15] = add(add(w[t & 15], s0), add(w[(t - 7) & 15], s1));
    }
    const __m256i kt = _mm256_set1_epi64x(static_cast<long long>(kSha512K[t]));
    const __m256i sig1 = xor3(ror<14>(e), ror<18>(e), ror<41>(e));
    const __m256i t1 = add(add(h, sig1), add(ch(e, f, g), add(kt, w[t & 15])));
    const __m256i sig0 = xor3(ror<28>(a), ror<34>(a), ror<39>(a));
    const __m256i t2 = add(sig0, maj(a, b, c));
    h = g;
    g = f;
    f = e;
    e = add(d, t1);
    d = c;
    c = b;
    b = a;
    a = add(t1, t2);
  }

  s[0] = add(s[0], a);
  s[1] = add(s[1], b);
  s[2] = add(s[2], c);
  s[3] = add(s[3], d);
  s[4] = add(s[4], e);
  s[5] = add(s[5], f);
  s[6] = add(s[6], g);
  s[7] = add(s[7], h);
  for (int i = 0; i < 8; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&state[i][0]), s[i]);
  }
}

}  // namespace spider::crypto::detail

#else  // stub: build can't target AVX2

namespace spider::crypto::detail {

bool sha512_x4_supported() { return false; }
void sha512_x4_compress(std::uint64_t[8][kMaxLanes], const std::uint8_t* const[kMaxLanes]) {}

}  // namespace spider::crypto::detail

#endif

// SHA-256 and SHA-512 (FIPS 180-4), implemented from scratch.
//
// SPIDeR's commitments use SHA-512 truncated to 20 bytes (paper §7.1:
// "We chose RSA-1024 signatures and the SHA-512 hash function, but we use
// only the first 20 bytes of each digest to save space").
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace spider::crypto {

using util::Bytes;
using util::ByteSpan;
using util::Digest20;

/// Streaming SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }
  void reset();
  void update(ByteSpan data);
  Digest finish();

  /// One-shot convenience.
  static Digest hash(ByteSpan data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// Streaming SHA-512.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512() { reset(); }
  void reset();
  void update(ByteSpan data);
  Digest finish();

  static Digest hash(ByteSpan data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_{};
  std::array<std::uint8_t, 128> buffer_{};
  // Message lengths in this codebase never approach 2^64 bits, so a single
  // 64-bit byte counter suffices for the 128-bit length field.
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// SHA-512 truncated to the first 20 bytes: the digest/label type used by
/// every commitment, MTT label and logged message hash in this system.
Digest20 digest20(ByteSpan data);

/// digest20 over the concatenation of several fields, avoiding a copy.
Digest20 digest20_concat(std::initializer_list<ByteSpan> parts);

}  // namespace spider::crypto

// Cryptographic randomness for commitments.
//
// Each commitment draws all of its random bitstrings (the x_i values behind
// bit nodes, and the labels of dummy nodes) from a per-commitment secret
// seed (paper §6.5).  Storing only the seed — 32 bytes — lets the proof
// generator reproduce every bitstring during replay, which is why a
// commitment adds just a constant amount of data to the log.
//
// Two derivations are provided:
//  * Rc4Csprng        — the paper's construction, a sequential stream;
//  * CommitmentPrf    — a positional PRF, x(index) = SHA-512(seed || index)
//                       truncated to 20 bytes.  Functionally equivalent for
//                       privacy (outputs are indistinguishable from hash
//                       values without the seed) but random-access, which
//                       lets the MTT labeler run in parallel and generate
//                       bit proofs without materializing 20 bytes for every
//                       one of millions of bit nodes.  DESIGN.md documents
//                       this substitution.
#pragma once

#include <cstdint>

#include "crypto/rc4.hpp"
#include "crypto/sha2.hpp"
#include "util/bytes.hpp"

namespace spider::crypto {

using util::Digest20;

/// A 32-byte commitment seed.  Marked secret for the taint pass: any
/// value of this type must stay inside the commitment boundary (hashes
/// of it are public; the bytes themselves are not).
struct Seed {  // spider-taint: secret
  std::array<std::uint8_t, 32> data{};

  ByteSpan span() const { return ByteSpan{data.data(), data.size()}; }
  bool operator==(const Seed&) const = default;
};

/// Derives a fresh, unpredictable seed from OS entropy.
Seed random_seed();

/// Deterministically derives a seed from a label (tests and replayable sims).
Seed seed_from_string(std::string_view label);

/// Positional PRF over a commitment seed.  Domain-separated streams keep the
/// x-values of bit nodes disjoint from dummy-node labels.
class CommitmentPrf {
 public:
  explicit CommitmentPrf(const Seed& seed) : seed_(seed) {}

  /// Random bitstring for the x value of bit node `index`.  Secret until
  /// the checker explicitly challenges that bit (paper §6.4).
  Digest20 bit_randomness(std::uint64_t index) const { return derive('x', index); }  // spider-taint: secret

  /// Batch form: out[i] = bit_randomness(indices[i]) for i in [0, n), run
  /// through the multi-lane SHA-512 batcher.  The labeler derives millions
  /// of x values per commitment, all 41-byte messages — ideal lane food.
  // spider-taint: secret
  void bit_randomness_batch(const std::uint64_t* indices, std::size_t n, Digest20* out) const;

  /// Random label for dummy node `index`.
  Digest20 dummy_label(std::uint64_t index) const { return derive('d', index); }

  const Seed& seed() const { return seed_; }

 private:
  // spider-taint: secret
  Digest20 derive(char domain, std::uint64_t index) const;

  Seed seed_;
};

}  // namespace spider::crypto

// RSA signatures (PKCS#1 v1.5 over SHA-512), from scratch on crypto/bignum.
//
// The paper uses RSA-1024 (§7.1).  Signing uses the CRT speedup; key
// generation uses Miller–Rabin.  Key generation is deterministic given an
// rng, which the test suite uses to share one key set across many tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/bignum.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace spider::crypto {

struct RsaPublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
  Bytes encode() const;
  static RsaPublicKey decode(ByteSpan data);
  bool operator==(const RsaPublicKey&) const = default;
};

// All CRT components are signing secrets; the taint pass treats every
// value of this type as secret data.
struct RsaPrivateKey {  // spider-taint: secret
  BigInt n, e, d;
  BigInt p, q;        // prime factors
  BigInt dp, dq, qinv;  // CRT exponents and coefficient

  RsaPublicKey public_key() const { return {n, e}; }
};

/// Generates an RSA key pair with a `bits`-bit modulus (e = 65537).
RsaPrivateKey rsa_generate(std::size_t bits, util::SplitMix64& rng);

/// EMSA-PKCS1-v1_5 encoding of SHA-512(message) into `em_len` bytes.
/// Shared by sign/verify here and by the retained reference signer in
/// crypto/bignum_ref.hpp, so the differential battery compares raw
/// exponentiation engines rather than two copies of the padding code.
Bytes pkcs1_sha512_encode(ByteSpan message, std::size_t em_len);

/// PKCS#1 v1.5 signature over SHA-512(message).
Bytes rsa_sign(const RsaPrivateKey& key, ByteSpan message);

/// Verifies a PKCS#1 v1.5 / SHA-512 signature.
bool rsa_verify(const RsaPublicKey& key, ByteSpan message, ByteSpan signature);

/// One (message, signature) claim in a batch verification.
struct RsaVerifyItem {
  ByteSpan message;
  ByteSpan signature;
};

/// Verifies many PKCS#1 v1.5 / SHA-512 signatures under one public key,
/// amortizing the Montgomery context setup (the divmod-based R^2
/// precomputation) across the batch.  Results are strictly per-item — one
/// bad signature never taints its neighbors — and agree with rsa_verify
/// on every item.  Public-exponent exponentiation is variable-time by
/// design (all inputs are public).
std::vector<bool> rsa_verify_batch(const RsaPublicKey& key,
                                   const std::vector<RsaVerifyItem>& items);

// ---------------------------------------------------------------------------
// Scheme abstraction.  VPref and SPIDeR only need "sign" and "verify"; the
// abstraction lets tests swap in a cheap scheme while benches and examples
// run real RSA-1024 (the paper's configuration).

class Signer {
 public:
  virtual ~Signer() = default;
  virtual Bytes sign(ByteSpan message) const = 0;
  /// Serialized public key, embedded in identities and evidence.
  virtual Bytes public_key() const = 0;
  virtual std::size_t signature_size() const = 0;
};

class Verifier {
 public:
  virtual ~Verifier() = default;
  virtual bool verify(ByteSpan message, ByteSpan signature) const = 0;
};

class RsaSigner final : public Signer {
 public:
  explicit RsaSigner(RsaPrivateKey key) : key_(std::move(key)) {}
  Bytes sign(ByteSpan message) const override { return rsa_sign(key_, message); }
  // spider-taint: declassify(the RSA public half (n, e) is published by design)
  Bytes public_key() const override { return key_.public_key().encode(); }
  std::size_t signature_size() const override { return key_.public_key().modulus_bytes(); }

 private:
  RsaPrivateKey key_;
};

class RsaVerifier final : public Verifier {
 public:
  explicit RsaVerifier(RsaPublicKey key) : key_(std::move(key)) {}
  bool verify(ByteSpan message, ByteSpan signature) const override {
    return rsa_verify(key_, message, signature);
  }

 private:
  RsaPublicKey key_;
};

/// Keyed-hash scheme for tests: sign = HMAC-SHA-512(key, msg) truncated.  Not
/// publicly verifiable crypto — only the matching HashVerifier (sharing the
/// key) accepts it — but it preserves every protocol property the tests
/// exercise while running ~10^4x faster than RSA keygen.
class HashSigner final : public Signer {
 public:
  explicit HashSigner(Bytes key) : key_(std::move(key)) {}
  Bytes sign(ByteSpan message) const override;
  // spider-taint: declassify(test-only scheme: the verifier deliberately shares the MAC key)
  Bytes public_key() const override { return key_; }
  std::size_t signature_size() const override { return 20; }

 private:
  // spider-taint: secret
  Bytes key_;
};

class HashVerifier final : public Verifier {
 public:
  explicit HashVerifier(Bytes key) : key_(std::move(key)) {}
  bool verify(ByteSpan message, ByteSpan signature) const override;

 private:
  Bytes key_;
};

}  // namespace spider::crypto

#include "crypto/mont.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::crypto {

namespace {

/// Pads a value known to be < 2^(64*size) out to `size` limbs.
std::vector<limb_t> padded(const BigInt& v, std::size_t size) {
  std::vector<limb_t> out(v.limbs());
  out.resize(size, 0);
  return out;
}

/// Final Montgomery reduction step without a branch: the accumulator is in
/// [0, 2N) (value = top * B^s + t[0..s)); always compute t - N into out,
/// then keep t instead when the value was already reduced (top == 0 and
/// the subtraction borrowed).  Data-independent time regardless of t.
void reduce_once(const limb_t* t, limb_t top, const limb_t* n, std::size_t s, limb_t* out) {
  const limb_t borrow = lk::sub(t, s, n, s, out);
  const limb_t keep = (limb_t{0} - borrow) & ~lk::nonzero_mask(top);
  for (std::size_t j = 0; j < s; ++j) out[j] ^= (out[j] ^ t[j]) & keep;
}

/// Constant-time window-table gather: out = table[index] for index in
/// [0, 16) without indexing memory by the secret — every entry is read and
/// masked, only the matching one lands in out.
void ct_select(const limb_t* table, std::size_t s, limb_t index, limb_t* out) {
  std::fill(out, out + s, limb_t{0});
  for (limb_t i = 0; i < 16; ++i) {
    const limb_t mask = ~lk::nonzero_mask(i ^ index);
    const limb_t* entry = table + static_cast<std::size_t>(i) * s;
    for (std::size_t j = 0; j < s; ++j) out[j] |= entry[j] & mask;
  }
}

/// mont_mul with the width fixed at compile time: the inner loops unroll
/// fully and the accumulator row lives in registers instead of scratch.
/// RSA-512..2048 halves and moduli land on these widths; everything else
/// takes the generic path.
template <std::size_t S>
void mont_mul_fixed(const limb_t* a, const limb_t* b, const limb_t* n, limb_t n0, limb_t* out) {
  limb_t t[S + 1] = {};
  for (std::size_t i = 0; i < S; ++i) {
    const dlimb_t ai = a[i];
    dlimb_t p = static_cast<dlimb_t>(t[0]) + ai * b[0];
    const limb_t m = static_cast<limb_t>(p) * n0;
    dlimb_t q = static_cast<dlimb_t>(static_cast<limb_t>(p)) + static_cast<dlimb_t>(m) * n[0];
    limb_t mul_carry = static_cast<limb_t>(p >> kLimbBits);
    limb_t red_carry = static_cast<limb_t>(q >> kLimbBits);
    for (std::size_t j = 1; j < S; ++j) {
      p = static_cast<dlimb_t>(t[j]) + ai * b[j] + mul_carry;
      mul_carry = static_cast<limb_t>(p >> kLimbBits);
      q = static_cast<dlimb_t>(static_cast<limb_t>(p)) + static_cast<dlimb_t>(m) * n[j] +
          red_carry;
      red_carry = static_cast<limb_t>(q >> kLimbBits);
      t[j - 1] = static_cast<limb_t>(q);
    }
    const dlimb_t top = static_cast<dlimb_t>(t[S]) + mul_carry + red_carry;
    t[S - 1] = static_cast<limb_t>(top);
    t[S] = static_cast<limb_t>(top >> kLimbBits);
  }
  reduce_once(t, t[S], n, S, out);
}

}  // namespace

MontCtx::MontCtx(const BigInt& modulus) : modulus_(modulus), n_(modulus.limbs()) {
  // Misuse guard, not a data leak: RSA moduli are odd primes (or products
  // of them) by construction, so oddness and the >= 3 bound are public
  // facts about every modulus that reaches here.
  // spider-lint: allow(R14) modulus oddness is public for RSA moduli
  if (!modulus.is_odd() || modulus < BigInt{3}) {
    throw std::domain_error("MontCtx: modulus must be odd and >= 3");
  }
  // Newton iteration doubles the correct low bits of the inverse each
  // step: seeding with n (3 bits correct mod 8 for odd n) reaches 64 bits
  // in five steps; a sixth is free insurance.
  limb_t inv = n_[0];
  for (int i = 0; i < 6; ++i) inv *= 2 - n_[0] * inv;
  n0_ = limb_t{0} - inv;

  const std::size_t s = n_.size();
  rr_ = padded((BigInt{1} << (2 * kLimbBits * s)) % modulus, s);
  one_ = padded((BigInt{1} << (kLimbBits * s)) % modulus, s);
}

void MontCtx::mont_mul(const limb_t* a, const limb_t* b, limb_t* out, limb_t* scratch) const {
  const std::size_t s = n_.size();
  switch (s) {
    case 4: return mont_mul_fixed<4>(a, b, n_.data(), n0_, out);
    case 6: return mont_mul_fixed<6>(a, b, n_.data(), n0_, out);
    case 8: return mont_mul_fixed<8>(a, b, n_.data(), n0_, out);
    case 12: return mont_mul_fixed<12>(a, b, n_.data(), n0_, out);
    case 16: return mont_mul_fixed<16>(a, b, n_.data(), n0_, out);
    default: break;
  }
  limb_t* t = scratch;  // s + 1 limbs used
  std::fill(t, t + s + 1, limb_t{0});
  for (std::size_t i = 0; i < s; ++i) {
    // One fused pass: t = (t + a[i]*b + m*N) >> 64 with m chosen so the
    // low limb cancels.  Two independent carry chains (partial product
    // and reduction) keep the dependency distance at one limb each.
    const dlimb_t ai = a[i];
    dlimb_t p = static_cast<dlimb_t>(t[0]) + ai * b[0];
    const limb_t m = static_cast<limb_t>(p) * n0_;
    dlimb_t q = static_cast<dlimb_t>(static_cast<limb_t>(p)) + static_cast<dlimb_t>(m) * n_[0];
    limb_t mul_carry = static_cast<limb_t>(p >> kLimbBits);
    limb_t red_carry = static_cast<limb_t>(q >> kLimbBits);
    for (std::size_t j = 1; j < s; ++j) {
      p = static_cast<dlimb_t>(t[j]) + ai * b[j] + mul_carry;
      mul_carry = static_cast<limb_t>(p >> kLimbBits);
      q = static_cast<dlimb_t>(static_cast<limb_t>(p)) + static_cast<dlimb_t>(m) * n_[j] +
          red_carry;
      red_carry = static_cast<limb_t>(q >> kLimbBits);
      t[j - 1] = static_cast<limb_t>(q);
    }
    // With a, b < N the invariant t < 2N holds, so the top fits one limb
    // plus a bit that the conditional subtraction below absorbs.
    const dlimb_t top = static_cast<dlimb_t>(t[s]) + mul_carry + red_carry;
    t[s - 1] = static_cast<limb_t>(top);
    t[s] = static_cast<limb_t>(top >> kLimbBits);
  }
  // Result is in [0, 2N): one branch-free final reduction.
  reduce_once(t, t[s], n_.data(), s, out);
}

void MontCtx::mont_sqr(const limb_t* a, limb_t* out, limb_t* scratch) const {
  const std::size_t s = n_.size();
  switch (s) {
    // At fixed widths the register-resident fused multiply beats the
    // sqr-then-reduce two-pass below even though it does more multiplies.
    case 4: return mont_mul_fixed<4>(a, a, n_.data(), n0_, out);
    case 6: return mont_mul_fixed<6>(a, a, n_.data(), n0_, out);
    case 8: return mont_mul_fixed<8>(a, a, n_.data(), n0_, out);
    case 12: return mont_mul_fixed<12>(a, a, n_.data(), n0_, out);
    case 16: return mont_mul_fixed<16>(a, a, n_.data(), n0_, out);
    default: break;
  }
  limb_t* t = scratch;  // 2s + 1 limbs
  lk::sqr(a, s, t);
  t[2 * s] = 0;
  // Montgomery reduction of the double-width square: s passes, each
  // cancelling the current low limb with m*N and carrying into the tail.
  for (std::size_t i = 0; i < s; ++i) {
    const limb_t m = t[i] * n0_;
    limb_t carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      dlimb_t cur = static_cast<dlimb_t>(t[i + j]) + static_cast<dlimb_t>(m) * n_[j] + carry;
      t[i + j] = static_cast<limb_t>(cur);
      carry = static_cast<limb_t>(cur >> kLimbBits);
    }
    // Ripple the carry to the top unconditionally: the tail length is
    // fixed by the (public) width, not by where the carry happens to die,
    // and adding zero limbs is free compared to a data-dependent exit.
    for (std::size_t k = i + s; k <= 2 * s; ++k) {
      dlimb_t cur = static_cast<dlimb_t>(t[k]) + carry;
      t[k] = static_cast<limb_t>(cur);
      carry = static_cast<limb_t>(cur >> kLimbBits);
    }
  }
  // a < N gives (a^2 + sum m_i*N*B^i) / R < 2N: one branch-free reduction.
  reduce_once(t + s, t[2 * s], n_.data(), s, out);
}

void MontCtx::to_mont(const limb_t* a, limb_t* out, limb_t* scratch) const {
  mont_mul(a, rr_.data(), out, scratch);
}

void MontCtx::from_mont(const limb_t* a, limb_t* out, limb_t* scratch) const {
  const std::size_t s = n_.size();
  std::vector<limb_t> unit(s, 0);
  unit[0] = 1;
  mont_mul(a, unit.data(), out, scratch);
}

BigInt MontCtx::exp(const BigInt& base, const BigInt& exponent) const {
  const std::size_t s = n_.size();
  const BigInt reduced = base % modulus_;

  // One flat block: 16-entry window table, accumulator, temp, CIOS row.
  std::vector<limb_t> block(16 * s + 2 * s + scratch_size());
  limb_t* table = block.data();
  limb_t* acc = table + 16 * s;
  limb_t* tmp = acc + s;
  limb_t* scratch = tmp + s;

  std::copy(one_.begin(), one_.end(), table);  // base^0 in Montgomery form
  {
    std::vector<limb_t> base_limbs = padded(reduced, s);
    to_mont(base_limbs.data(), table + s, scratch);
  }
  for (std::size_t i = 2; i < 16; ++i) {
    mont_mul(table + (i - 1) * s, table + s, table + i * s, scratch);
  }

  const std::size_t nbits = exponent.bit_length();
  const std::size_t nwindows = (nbits + 3) / 4;
  std::copy(one_.begin(), one_.end(), acc);
  for (std::size_t w = nwindows; w-- > 0;) {
    for (int k = 0; k < 4; ++k) {
      mont_sqr(acc, tmp, scratch);
      std::swap(acc, tmp);
    }
    std::size_t window = 0;
    for (int k = 3; k >= 0; --k) {
      std::size_t bit_idx = w * 4 + static_cast<std::size_t>(k);
      window = (window << 1) | ((bit_idx < nbits && exponent.bit(bit_idx)) ? 1u : 0u);
    }
    if (window != 0) {
      mont_mul(acc, table + window * s, tmp, scratch);
      std::swap(acc, tmp);
    }
  }

  from_mont(acc, tmp, scratch);
  return BigInt::from_limbs(std::vector<limb_t>(tmp, tmp + s));
}

// spider-taint: secret exponent
BigInt MontCtx::exp_ct(const BigInt& base, const BigInt& exponent) const {
  const std::size_t s = n_.size();
  const BigInt reduced = base % modulus_;

  // Same layout as exp() plus one gather buffer for the selected entry.
  std::vector<limb_t> block(16 * s + 3 * s + scratch_size());
  limb_t* table = block.data();
  limb_t* acc = table + 16 * s;
  limb_t* tmp = acc + s;
  limb_t* sel = tmp + s;
  limb_t* scratch = sel + s;

  std::copy(one_.begin(), one_.end(), table);  // base^0 in Montgomery form
  {
    std::vector<limb_t> base_limbs = padded(reduced, s);
    to_mont(base_limbs.data(), table + s, scratch);
  }
  for (std::size_t i = 2; i < 16; ++i) {
    mont_mul(table + (i - 1) * s, table + s, table + i * s, scratch);
  }

  // The window count comes from the public modulus width, never from the
  // exponent: any exponent used with this context is < N < 2^(64*s), so
  // 16*s windows always cover it and the trip count leaks nothing.  Each
  // window is gathered with ct_select and multiplied in unconditionally
  // (window 0 selects table[0] = Montgomery 1, a no-op product).
  std::vector<limb_t> exp_limbs = exponent.limbs();
  if (exp_limbs.size() > s) throw std::domain_error("MontCtx::exp_ct: exponent wider than modulus");
  exp_limbs.resize(s, 0);
  const std::size_t nwindows = kLimbBits * s / 4;
  std::copy(one_.begin(), one_.end(), acc);
  for (std::size_t w = nwindows; w-- > 0;) {
    for (int k = 0; k < 4; ++k) {
      mont_sqr(acc, tmp, scratch);
      std::swap(acc, tmp);
    }
    // 4 divides the limb width, so a window never straddles two limbs.
    const std::size_t bit0 = w * 4;
    const limb_t window = (exp_limbs[bit0 / kLimbBits] >> (bit0 % kLimbBits)) & 0xf;
    ct_select(table, s, window, sel);
    mont_mul(acc, sel, tmp, scratch);
    std::swap(acc, tmp);
  }

  from_mont(acc, tmp, scratch);
  return BigInt::from_limbs(std::vector<limb_t>(tmp, tmp + s));
}

}  // namespace spider::crypto

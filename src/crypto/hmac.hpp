// HMAC-SHA-512 (RFC 2104), from scratch on crypto/sha2.
//
// Used by the keyed-hash signature scheme (the fast test/simulation
// alternative to RSA) and available for any MAC need in the protocol layer.
#pragma once

#include "crypto/sha2.hpp"
#include "util/bytes.hpp"

namespace spider::crypto {

/// Streaming HMAC-SHA-512.
class HmacSha512 {
 public:
  static constexpr std::size_t kDigestSize = Sha512::kDigestSize;
  using Digest = Sha512::Digest;

  /// Keys longer than the 128-byte block are hashed first, per RFC 2104.
  explicit HmacSha512(ByteSpan key);

  void update(ByteSpan data) { inner_.update(data); }
  Digest finish();

  /// One-shot convenience.
  static Digest mac(ByteSpan key, ByteSpan message);

  /// First 20 bytes of the MAC — the signature size used by HashSigner.
  static util::Digest20 mac20(ByteSpan key, ByteSpan message);

 private:
  std::array<std::uint8_t, 128> opad_key_{};
  Sha512 inner_;
};

}  // namespace spider::crypto

#include "crypto/sha2_multi.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "crypto/sha2_kernel.hpp"
#include "obs/metrics.hpp"

namespace spider::crypto {

namespace {

using detail::kMaxLanes;

constexpr std::size_t kBlock = 128;

/// Blocks the padded message occupies: data, then 0x80 + zeros + 16-byte
/// length, rounded up.
std::size_t padded_blocks(std::size_t len) { return (len + 17 + kBlock - 1) / kBlock; }

struct Backend {
  std::size_t lanes;
  void (*compress)(std::uint64_t (*)[kMaxLanes], const std::uint8_t* const*);
};

const Backend& backend() {
  static const Backend be = [] {
    if (detail::sha512_x8_supported()) return Backend{8, &detail::sha512_x8_compress};
    if (detail::sha512_x4_supported()) return Backend{4, &detail::sha512_x4_compress};
    return Backend{1, nullptr};
  }();
  return be;
}

/// Per-lane padding tail: the final one or two blocks holding the message
/// remainder, the 0x80 marker and the big-endian bit length.
struct Tail {
  std::array<std::uint8_t, 2 * kBlock> pad{};
  std::size_t data_blocks = 0;
  std::size_t tail_blocks = 0;
};

void build_tail(ByteSpan msg, Tail& t) {
  const std::size_t rem = msg.size() % kBlock;
  t.data_blocks = msg.size() / kBlock;
  t.tail_blocks = padded_blocks(msg.size()) - t.data_blocks;
  if (rem != 0) std::memcpy(t.pad.data(), msg.data() + t.data_blocks * kBlock, rem);
  t.pad[rem] = 0x80;
  // 128-bit big-endian length; the high 8 bytes stay zero for any message
  // under 2^61 bytes (same assumption as the scalar class).
  const std::uint64_t bits = static_cast<std::uint64_t>(msg.size()) * 8;
  std::uint8_t* end = t.pad.data() + t.tail_blocks * kBlock;
  for (int i = 0; i < 8; ++i) end[-1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
}

/// Hashes a group of g (2 <= g <= kMaxLanes) messages that all pad to the
/// same block count; lanes past g re-hash the last message and are
/// discarded.
void run_group(const Backend& be, const ByteSpan* msgs, std::size_t g, Sha512::Digest* outs) {
  std::uint64_t state[8][kMaxLanes];
  for (std::size_t w = 0; w < 8; ++w) {
    for (std::size_t l = 0; l < kMaxLanes; ++l) state[w][l] = detail::kSha512Iv[w];
  }

  Tail tails[kMaxLanes];
  std::uint64_t total_bytes = 0;
  for (std::size_t l = 0; l < g; ++l) {
    build_tail(msgs[l], tails[l]);
    total_bytes += msgs[l].size();
  }

  const std::size_t nb = padded_blocks(msgs[0].size());
  const std::uint8_t* blocks[kMaxLanes] = {};
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t l = 0; l < be.lanes; ++l) {
      const std::size_t src = l < g ? l : g - 1;
      const Tail& t = tails[src];
      blocks[l] = b < t.data_blocks ? msgs[src].data() + b * kBlock
                                    : t.pad.data() + (b - t.data_blocks) * kBlock;
    }
    be.compress(state, blocks);
  }

  for (std::size_t l = 0; l < g; ++l) {
    for (std::size_t w = 0; w < 8; ++w) {
      for (std::size_t i = 0; i < 8; ++i) {
        outs[l][8 * w + i] = static_cast<std::uint8_t>(state[w][l] >> (56 - 8 * i));
      }
    }
  }
  // The scalar class counts inside finish(); the lane path never reaches
  // it, so account for the whole group here.
  SPIDER_OBS_COUNT("crypto/sha512_digests", g);
  SPIDER_OBS_COUNT("crypto/sha512_bytes", total_bytes);
  SPIDER_OBS_COUNT("crypto/sha512_lane_groups", 1);
}

}  // namespace

std::size_t sha512_lanes() { return backend().lanes; }

void sha512_batch(const ByteSpan* msgs, std::size_t n, Sha512::Digest* outs) {
  const Backend& be = backend();
  std::size_t i = 0;
  while (i < n) {
    if (be.lanes == 1) {
      outs[i] = Sha512::hash(msgs[i]);
      ++i;
      continue;
    }
    // Greedily extend a run of messages with the same padded block count.
    const std::size_t nb = padded_blocks(msgs[i].size());
    std::size_t j = i + 1;
    while (j < n && j - i < be.lanes && padded_blocks(msgs[j].size()) == nb) ++j;
    const std::size_t g = j - i;
    if (g >= 2) {
      run_group(be, msgs + i, g, outs + i);
    } else {
      outs[i] = Sha512::hash(msgs[i]);
    }
    i = j;
  }
}

void digest20_batch(const ByteSpan* msgs, std::size_t n, Digest20* outs) {
  std::array<Sha512::Digest, 64> full;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t g = std::min(full.size(), n - i);
    sha512_batch(msgs + i, g, full.data());
    for (std::size_t k = 0; k < g; ++k) {
      std::memcpy(outs[i + k].data(), full[k].data(), outs[i + k].size());
    }
    i += g;
  }
}

}  // namespace spider::crypto

// The transport plane: how SPIDeR protocol objects reach their peers.
//
// Protocol code (the recorder, the node runner) is written against the
// message-oriented Endpoint interface below and never touches sockets or
// the simulator directly.  Two backends implement it:
//
//   * NetsimTransport (netsim_transport.hpp) — a shim over the
//     deterministic discrete-event simulator.  It forwards frame bytes
//     unchanged (no added framing), so a deployment refactored onto the
//     abstraction produces byte-identical traffic, link stats, and chaos
//     corruption offsets to the pre-abstraction code.  Tests and the chaos
//     matrix run on this backend.
//   * TcpTransport (tcp_transport.hpp) — a real non-blocking TCP backend
//     with an epoll event loop and length-prefixed framing
//     (framing.hpp).  Multi-process deployments (tools/spider_node) run on
//     this backend.
//
// The contract (DESIGN.md §7):
//   * Frames are delivered whole and in order per peer, or not at all —
//     the backend owns reassembly; the handler never sees a partial frame.
//   * send() is non-blocking: true means "accepted for delivery", never
//     "delivered".  false means no path (unknown/disconnected peer) or
//     backpressure (the peer's write queue is full); protocol-level
//     retransmission (the recorder's ACK deadline) is the recovery path.
//   * Timers and frame delivery are serialized: the backend invokes
//     handler and timer callbacks from a single logical thread, so
//     protocol state needs no locking.
//   * now() is the node's local clock in microseconds.  Under netsim this
//     is simulated time plus the node's configured skew; under TCP it is
//     CLOCK_MONOTONIC, which all processes of one host share (cross-host
//     deployments lean on the protocol's max_clock_skew tolerance).
#pragma once

#include <cstdint>
#include <functional>

#include "util/bytes.hpp"

namespace spider::transport {

/// Microseconds, same epoch rules as netsim::Time.
using Time = std::int64_t;

/// Peer identity as the protocol layer sees it.  SPIDeR peers are AS
/// numbers; process runners may use out-of-band ids for control clients.
using PeerId = std::uint32_t;

/// Reserved: a frame whose sender the backend cannot attribute (e.g. a
/// netsim message from an unregistered node).  Protocol code treats these
/// as unauthenticated input.
constexpr PeerId kUnknownPeer = 0;

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  using FrameHandler = std::function<void(PeerId from, util::ByteSpan frame)>;

  /// Installs the delivery callback.  At most one handler; installing
  /// replaces the previous one.  Frames arriving with no handler installed
  /// are dropped.
  virtual void set_frame_handler(FrameHandler handler) = 0;

  /// Queues one frame to `to`.  See the contract above for the meaning of
  /// the return value.
  virtual bool send(PeerId to, util::ByteSpan frame) = 0;

  /// Runs `fn` after `delay` microseconds of this endpoint's clock, from
  /// the same logical thread that delivers frames.
  virtual void schedule_in(Time delay, std::function<void()> fn) = 0;

  /// This node's local clock (microseconds).
  virtual Time now() const = 0;
};

}  // namespace spider::transport

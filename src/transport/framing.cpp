#include "transport/framing.hpp"

#include "util/serde.hpp"

namespace spider::transport {

void write_frame_header(std::uint8_t out[kFrameHeaderBytes], std::size_t payload_size,
                        const FrameLimits& limits) {
  if (payload_size > limits.max_frame_bytes) {
    throw util::DecodeError("frame payload exceeds max_frame_bytes");
  }
  const auto n = static_cast<std::uint32_t>(payload_size);
  out[0] = static_cast<std::uint8_t>(n >> 24);
  out[1] = static_cast<std::uint8_t>(n >> 16);
  out[2] = static_cast<std::uint8_t>(n >> 8);
  out[3] = static_cast<std::uint8_t>(n);
}

FrameDecoder::FrameDecoder(FrameLimits limits) : limits_(limits) {
  if (limits_.max_buffered_bytes < limits_.max_frame_bytes + kFrameHeaderBytes) {
    limits_.max_buffered_bytes = static_cast<std::size_t>(limits_.max_frame_bytes) +
                                 kFrameHeaderBytes;
  }
}

void FrameDecoder::feed(util::ByteSpan data) {
  // Compact before growing: delivered frames at the front are dead weight,
  // and dropping them first keeps the buffered-bytes bound meaningful.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  if (buffer_.size() + data.size() > limits_.max_buffered_bytes) {
    throw util::DecodeError("frame decoder buffer exceeds max_buffered_bytes");
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());

  // Validate every complete header already visible: an oversized
  // declaration is rejected on arrival of its 4th header byte, not when
  // (never) the payload completes.
  std::size_t scan = consumed_;
  while (buffer_.size() - scan >= kFrameHeaderBytes) {
    const std::uint32_t len = (static_cast<std::uint32_t>(buffer_[scan]) << 24) |
                              (static_cast<std::uint32_t>(buffer_[scan + 1]) << 16) |
                              (static_cast<std::uint32_t>(buffer_[scan + 2]) << 8) |
                              static_cast<std::uint32_t>(buffer_[scan + 3]);
    if (len > limits_.max_frame_bytes) {
      throw util::DecodeError("frame header declares more than max_frame_bytes");
    }
    const std::size_t total = kFrameHeaderBytes + len;
    if (buffer_.size() - scan < total) break;
    scan += total;
  }
}

std::optional<util::Bytes> FrameDecoder::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::nullopt;
  const std::size_t at = consumed_;
  const std::uint32_t len = (static_cast<std::uint32_t>(buffer_[at]) << 24) |
                            (static_cast<std::uint32_t>(buffer_[at + 1]) << 16) |
                            (static_cast<std::uint32_t>(buffer_[at + 2]) << 8) |
                            static_cast<std::uint32_t>(buffer_[at + 3]);
  if (len > limits_.max_frame_bytes) {
    throw util::DecodeError("frame header declares more than max_frame_bytes");
  }
  if (available < kFrameHeaderBytes + len) return std::nullopt;
  util::Bytes frame(buffer_.begin() + static_cast<std::ptrdiff_t>(at + kFrameHeaderBytes),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(at + kFrameHeaderBytes + len));
  consumed_ += kFrameHeaderBytes + len;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return frame;
}

}  // namespace spider::transport

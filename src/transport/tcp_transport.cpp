#include "transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <ctime>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/serde.hpp"

namespace spider::transport {

namespace {

constexpr std::size_t kPreambleBytes = 8;
constexpr std::uint8_t kMagic[4] = {'S', 'P', 'D', 'R'};
constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kMaxIov = 64;
/// Upper bound on one epoll_wait so stop() from a signal-driven caller is
/// observed promptly even with no traffic and distant timers.
constexpr Time kMaxPollSlice = 50'000;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("tcp transport: fcntl(O_NONBLOCK) failed");
  }
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

util::Bytes make_preamble(PeerId self) {
  util::Bytes preamble(kPreambleBytes);
  preamble[0] = kMagic[0];
  preamble[1] = kMagic[1];
  preamble[2] = kMagic[2];
  preamble[3] = kMagic[3];
  preamble[4] = static_cast<std::uint8_t>(self >> 24);
  preamble[5] = static_cast<std::uint8_t>(self >> 16);
  preamble[6] = static_cast<std::uint8_t>(self >> 8);
  preamble[7] = static_cast<std::uint8_t>(self);
  return preamble;
}

}  // namespace

TcpTransport::TcpTransport(PeerId self, TcpConfig config)
    : self_(self), config_(std::move(config)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("tcp transport: epoll_create1 failed");
}

TcpTransport::~TcpTransport() {
  for (auto& [fd, conn] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Time TcpTransport::now() const {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Time>(ts.tv_sec) * 1'000'000 + static_cast<Time>(ts.tv_nsec) / 1'000;
}

void TcpTransport::schedule_in(Time delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  timers_.push(Timer{now() + delay, timer_seq_++, std::move(fn)});
}

std::uint16_t TcpTransport::listen_on(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("tcp transport: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, config_.bind_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("tcp transport: bad bind host " + config_.bind_host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, config_.listen_backlog) < 0) {
    ::close(fd);
    throw std::runtime_error("tcp transport: bind/listen failed on port " +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  set_nonblocking(fd);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  listen_fd_ = fd;
  listen_port_ = ntohs(addr.sin_port);
  return listen_port_;
}

bool TcpTransport::connect_peer(PeerId peer, const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  adopt_socket(fd, peer, /*preamble_done_peer_known=*/false);
  return true;
}

void TcpTransport::adopt_socket(int fd, PeerId peer, bool) {
  set_nonblocking(fd);
  set_nodelay(fd);

  auto conn = std::make_unique<Conn>(config_.limits);
  conn->fd = fd;
  // The far end's identity is confirmed by its preamble; a dialed peer id
  // is provisional routing state so send() works before the preamble's
  // round trip completes.
  if (peer != kUnknownPeer) {
    conn->peer = peer;
    peer_fds_[peer] = fd;
  }
  // Both sides speak first: queue our preamble ahead of any frame.
  util::Bytes preamble = make_preamble(self_);
  conn->queued_bytes += preamble.size();
  conn->backlog_since = now();
  conn->out.push_back(std::move(preamble));

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  Conn& ref = *conn;
  ref.want_write = true;
  conns_.emplace(fd, std::move(conn));
  flush_conn(ref);
  SPIDER_OBS_GAUGE_SET("transport/connections", conns_.size());
}

bool TcpTransport::send(PeerId to, util::ByteSpan frame) {
  auto it = peer_fds_.find(to);
  if (it == peer_fds_.end()) {
    SPIDER_OBS_COUNT("transport/send_no_peer", 1);
    return false;
  }
  auto conn_it = conns_.find(it->second);
  if (conn_it == conns_.end()) return false;
  Conn& conn = *conn_it->second;

  if (frame.size() > config_.limits.max_frame_bytes) {
    SPIDER_OBS_COUNT("transport/oversize_send_rejects", 1);
    return false;
  }
  if (conn.queued_bytes + frame.size() + kFrameHeaderBytes > config_.max_queued_bytes) {
    SPIDER_OBS_COUNT("transport/backpressure_rejects", 1);
    return false;
  }

  util::Bytes header(kFrameHeaderBytes);
  write_frame_header(header.data(), frame.size(), config_.limits);
  if (conn.out.empty()) conn.backlog_since = now();
  conn.queued_bytes += header.size() + frame.size();
  conn.out.push_back(std::move(header));
  conn.out.emplace_back(frame.begin(), frame.end());

  SPIDER_OBS_COUNT("transport/frames_out", 1);
  SPIDER_OBS_COUNT("transport/bytes_out", frame.size() + kFrameHeaderBytes);
  SPIDER_OBS_HIST("transport/frame_bytes_out", frame.size(), obs::size_buckets_bytes());
  SPIDER_OBS_GAUGE_MAX("transport/max_queued_bytes", conn.queued_bytes);

  if (conn.queued_bytes >= config_.eager_flush_bytes) {
    flush_conn(conn);
  } else if (!conn.want_write) {
    // Arm EPOLLOUT instead of writing inline: the socket is writable, so
    // the next poll returns immediately and drains everything queued since
    // — one writev for the whole backlog.
    conn.want_write = true;
    update_interest(conn);
  }
  return true;
}

void TcpTransport::flush_conn(Conn& conn) {
  while (!conn.out.empty()) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    std::size_t offset = conn.head_offset;
    for (const util::Bytes& block : conn.out) {
      if (iov_count == kMaxIov) break;
      iov[iov_count].iov_base =
          const_cast<std::uint8_t*>(block.data()) + offset;
      iov[iov_count].iov_len = block.size() - offset;
      offset = 0;
      ++iov_count;
    }
    const ssize_t wrote = ::writev(conn.fd, iov, iov_count);
    if (wrote < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn.fd, "write error");
      return;
    }
    std::size_t remaining = static_cast<std::size_t>(wrote);
    while (remaining > 0) {
      util::Bytes& front = conn.out.front();
      const std::size_t left = front.size() - conn.head_offset;
      if (remaining >= left) {
        remaining -= left;
        conn.queued_bytes -= left;
        conn.head_offset = 0;
        conn.out.pop_front();
      } else {
        conn.head_offset += remaining;
        conn.queued_bytes -= remaining;
        remaining = 0;
      }
    }
  }
  const bool want = !conn.out.empty();
  if (!want && conn.want_write) {
    SPIDER_OBS_HIST("transport/flush_latency_micros", now() - conn.backlog_since,
                    obs::latency_buckets_micros());
  }
  if (want != conn.want_write) {
    conn.want_write = want;
    update_interest(conn);
  }
}

void TcpTransport::update_interest(Conn& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void TcpTransport::attribute_peer(Conn& conn, PeerId peer) {
  if (conn.peer != kUnknownPeer && conn.peer != peer) {
    // A dialed connection whose far end is not who we dialed: refuse it.
    close_conn(conn.fd, "preamble peer mismatch");
    return;
  }
  conn.peer = peer;
  peer_fds_[peer] = conn.fd;
  conn.preamble_done = true;
}

void TcpTransport::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) return;
    adopt_socket(fd, kUnknownPeer, false);
    SPIDER_OBS_COUNT("transport/accepts", 1);
  }
}

void TcpTransport::handle_readable(int fd) {
  std::uint8_t buf[kReadChunk];
  for (;;) {
    // The connection can be torn down mid-loop by a handler or a framing
    // violation; re-look it up every pass.
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& conn = *it->second;

    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got == 0) {
      close_conn(fd, "peer closed");
      return;
    }
    if (got < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) close_conn(fd, "read error");
      return;
    }
    util::ByteSpan data(buf, static_cast<std::size_t>(got));
    SPIDER_OBS_COUNT("transport/bytes_in", data.size());

    if (!conn.preamble_done) {
      const std::size_t need = kPreambleBytes - conn.preamble_buf.size();
      const std::size_t take = data.size() < need ? data.size() : need;
      conn.preamble_buf.insert(conn.preamble_buf.end(), data.begin(),
                               data.begin() + static_cast<std::ptrdiff_t>(take));
      data = data.subspan(take);
      if (conn.preamble_buf.size() < kPreambleBytes) continue;
      if (!std::equal(kMagic, kMagic + sizeof(kMagic), conn.preamble_buf.begin())) {
        close_conn(fd, "bad preamble magic");
        return;
      }
      const PeerId peer = (static_cast<PeerId>(conn.preamble_buf[4]) << 24) |
                          (static_cast<PeerId>(conn.preamble_buf[5]) << 16) |
                          (static_cast<PeerId>(conn.preamble_buf[6]) << 8) |
                          static_cast<PeerId>(conn.preamble_buf[7]);
      attribute_peer(conn, peer);
      if (conns_.count(fd) == 0) return;  // mismatch closed it
    }

    try {
      conn.decoder.feed(data);
    } catch (const util::DecodeError&) {
      SPIDER_OBS_COUNT("transport/frame_errors", 1);
      close_conn(fd, "framing violation");
      return;
    }
    while (true) {
      auto again = conns_.find(fd);
      if (again == conns_.end()) return;
      std::optional<util::Bytes> frame = again->second->decoder.next();
      if (!frame) break;
      SPIDER_OBS_COUNT("transport/frames_in", 1);
      SPIDER_OBS_HIST("transport/frame_bytes_in", frame->size(), obs::size_buckets_bytes());
      if (handler_) handler_(again->second->peer, *frame);
    }
  }
}

void TcpTransport::handle_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  flush_conn(*it->second);
}

void TcpTransport::close_conn(int fd, const char* why) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const PeerId peer = it->second->peer;
  (void)why;
  SPIDER_OBS_COUNT("transport/disconnects", 1);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  auto peer_it = peer_fds_.find(peer);
  if (peer_it != peer_fds_.end() && peer_it->second == fd) peer_fds_.erase(peer_it);
  conns_.erase(it);
  SPIDER_OBS_GAUGE_SET("transport/connections", conns_.size());
  if (peer != kUnknownPeer && disconnect_handler_) disconnect_handler_(peer);
}

void TcpTransport::fire_due_timers() {
  const Time t = now();
  while (!timers_.empty() && timers_.top().at <= t) {
    // Timer::fn is move-only in spirit; priority_queue::top() is const, so
    // pull via const_cast-free copy of the callable.
    Timer timer = timers_.top();
    timers_.pop();
    timer.fn();
  }
}

void TcpTransport::poll_once(Time max_wait) {
  Time wait = max_wait < kMaxPollSlice ? max_wait : kMaxPollSlice;
  if (!timers_.empty()) {
    const Time until = timers_.top().at - now();
    if (until < wait) wait = until;
  }
  if (wait < 0) wait = 0;
  const int timeout_ms = static_cast<int>((wait + 999) / 1000);

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == listen_fd_) {
      handle_accept();
      continue;
    }
    if (events[i].events & (EPOLLHUP | EPOLLERR)) {
      close_conn(fd, "hup");
      continue;
    }
    if (events[i].events & EPOLLIN) handle_readable(fd);
    if (events[i].events & EPOLLOUT) handle_writable(fd);
  }
  fire_due_timers();
}

void TcpTransport::run() {
  stop_ = false;
  while (!stop_) poll_once(kMaxPollSlice);
}

void TcpTransport::run_for(Time duration) {
  const Time deadline = now() + duration;
  stop_ = false;
  while (!stop_) {
    const Time left = deadline - now();
    if (left <= 0) return;
    poll_once(left);
  }
}

}  // namespace spider::transport

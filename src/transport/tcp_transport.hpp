// The deployable backend: transport::Endpoint over non-blocking TCP.
//
// One TcpTransport is one process-local endpoint with an epoll event loop.
// Frames ride the framing.hpp length-prefixed format; each connection
// begins with an 8-byte preamble ("SPDR" + the sender's u32 PeerId,
// big-endian) so both directions of a connection are attributed before any
// frame flows.  The loop owns everything: accept, incremental frame
// reassembly across partial reads, a writev-chained write queue per
// connection with a hard queued-bytes bound (send() refuses above it —
// protocol retransmission is the recovery path), and a timer min-heap that
// drives epoll_wait timeouts.  All callbacks (frames, timers, disconnects)
// fire from whichever thread is inside run()/run_for()/poll_once() —
// single logical thread, no locking in protocol code.
//
// Clock: CLOCK_MONOTONIC microseconds.  Every process on one host reads
// the same monotonic clock, so a loopback deployment's recorders agree on
// time to well under the protocol's max_clock_skew.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "transport/framing.hpp"
#include "transport/transport.hpp"

namespace spider::transport {

struct TcpConfig {
  FrameLimits limits;
  /// Per-connection write-queue bound.  send() returns false (and counts
  /// transport/backpressure_rejects) when accepting the frame would exceed
  /// it.
  std::size_t max_queued_bytes = 128u << 20;
  /// send() queues small frames and lets the next poll drain the backlog
  /// in one writev; only a backlog this large forces the syscall inline.
  /// Coalescing matters when many senders share a core: one writev per
  /// poll instead of one per frame.  0 restores flush-per-send.
  std::size_t eager_flush_bytes = 64u << 10;
  std::string bind_host = "127.0.0.1";
  int listen_backlog = 64;
};

class TcpTransport final : public Endpoint {
 public:
  /// `self` is the id announced in this endpoint's connection preambles.
  explicit TcpTransport(PeerId self, TcpConfig config = {});
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // ------------------------------------------------------------- Endpoint
  void set_frame_handler(FrameHandler handler) override { handler_ = std::move(handler); }
  bool send(PeerId to, util::ByteSpan frame) override;
  void schedule_in(Time delay, std::function<void()> fn) override;
  Time now() const override;

  // ------------------------------------------------------------- control
  /// Binds and listens on config.bind_host:`port` (0 = ephemeral).
  /// Returns the bound port.  Throws std::runtime_error on failure.
  std::uint16_t listen_on(std::uint16_t port);

  /// Dials `host`:`port`, expecting the far end to announce `peer` in its
  /// preamble (the connection is torn down on mismatch).  The TCP connect
  /// itself is blocking; returns false when it fails.
  bool connect_peer(PeerId peer, const std::string& host, std::uint16_t port);

  /// Event loop until stop().
  void run();
  /// Event loop for `duration` microseconds (drivers and tests).
  void run_for(Time duration);
  /// One epoll iteration waiting at most `max_wait` microseconds.
  void poll_once(Time max_wait);
  void stop() { stop_ = true; }

  bool peer_connected(PeerId peer) const { return peer_fds_.count(peer) != 0; }
  std::size_t connection_count() const { return conns_.size(); }
  PeerId self() const { return self_; }
  std::uint16_t listen_port() const { return listen_port_; }

  using DisconnectHandler = std::function<void(PeerId)>;
  void set_disconnect_handler(DisconnectHandler handler) {
    disconnect_handler_ = std::move(handler);
  }

 private:
  struct Conn {
    int fd = -1;
    PeerId peer = kUnknownPeer;
    bool preamble_done = false;
    util::Bytes preamble_buf;
    FrameDecoder decoder;
    /// Outgoing buffer chain: alternating header / payload blocks, flushed
    /// with writev.  head_offset is the part of the front block already on
    /// the wire.
    std::deque<util::Bytes> out;
    std::size_t head_offset = 0;
    std::size_t queued_bytes = 0;
    bool want_write = false;
    /// When the queue last went non-empty, for the flush-latency histogram.
    Time backlog_since = 0;

    explicit Conn(const FrameLimits& limits) : decoder(limits) {}
  };

  struct Timer {
    Time at = 0;
    std::uint64_t seq = 0;  // FIFO tie-break, mirroring netsim's invariant
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void adopt_socket(int fd, PeerId peer, bool preamble_done_peer_known);
  void handle_accept();
  void handle_readable(int fd);
  void handle_writable(int fd);
  void flush_conn(Conn& conn);
  void update_interest(Conn& conn);
  void close_conn(int fd, const char* why);
  void fire_due_timers();
  void attribute_peer(Conn& conn, PeerId peer);

  PeerId self_;
  TcpConfig config_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  FrameHandler handler_;
  DisconnectHandler disconnect_handler_;
  std::map<int, std::unique_ptr<Conn>> conns_;
  std::map<PeerId, int> peer_fds_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::uint64_t timer_seq_ = 0;
  bool stop_ = false;
};

}  // namespace spider::transport

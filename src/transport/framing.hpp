// Length-prefixed framing for stream transports.
//
// A TCP stream carries frames as [u32 big-endian length][length bytes]; the
// payload is the same canonical encode()/decode() wire format the netsim
// backend ships unframed.  FrameDecoder turns an arbitrary segmentation of
// that stream (partial reads, coalesced reads, 1-byte reads) back into
// whole frames, enforcing two hard limits before any allocation is sized
// from wire input:
//
//   * max_frame_bytes — a single frame's declared length.  A peer
//     announcing a larger frame is faulted immediately, from the 4 header
//     bytes alone.
//   * max_buffered_bytes — bytes a decoder may hold across feed() calls
//     while waiting for the rest of a frame.  This bounds the memory one
//     slow-trickling connection can pin.
//
// Violations throw util::DecodeError (the repo-wide "malformed adversarial
// input" signal); stream transports convert that into closing the
// connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace spider::transport {

struct FrameLimits {
  /// Largest payload a single frame may declare.  The default accommodates
  /// a full-table SPIDeR batch with headroom; spider_node raises it only
  /// for log-transfer endpoints.
  std::uint32_t max_frame_bytes = 64u << 20;  // 64 MiB
  /// Largest number of undelivered bytes buffered inside the decoder.
  /// Must be >= max_frame_bytes + 4 or a maximal frame could never
  /// complete; FrameDecoder enforces the invariant at construction.
  std::size_t max_buffered_bytes = (64u << 20) + 4;
};

/// The 4-byte header prepended to `payload_size` payload bytes.
constexpr std::size_t kFrameHeaderBytes = 4;

/// Encodes the frame header for a payload of `payload_size` bytes into
/// `out[0..3]` (big-endian).  Throws util::DecodeError when the payload
/// exceeds `limits.max_frame_bytes` — the sender applies the same bound it
/// expects receivers to enforce.
void write_frame_header(std::uint8_t out[kFrameHeaderBytes], std::size_t payload_size,
                        const FrameLimits& limits);

/// Incremental frame reassembler.  feed() bytes in any segmentation;
/// next() yields completed payloads in order.
class FrameDecoder {
 public:
  explicit FrameDecoder(FrameLimits limits = {});

  /// Appends stream bytes.  Throws util::DecodeError when a frame header
  /// declares more than max_frame_bytes or buffered data would exceed
  /// max_buffered_bytes; the decoder is unusable afterwards (the
  /// connection is dead anyway).
  void feed(util::ByteSpan data);

  /// The next complete frame payload, or nullopt when more bytes are
  /// needed.  Call in a loop — one feed() can complete many frames.
  std::optional<util::Bytes> next();

  /// Bytes currently buffered (incomplete header + partial payload).
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  const FrameLimits& limits() const { return limits_; }

 private:
  FrameLimits limits_;
  util::Bytes buffer_;
  /// Prefix of buffer_ already returned as frames; compacted lazily so a
  /// burst of small frames does not memmove per frame.
  std::size_t consumed_ = 0;
};

}  // namespace spider::transport

// The deterministic backend: transport::Endpoint over netsim::Simulator.
//
// The shim is deliberately transparent — send() forwards the frame bytes
// to Simulator::send with nothing added or reordered, and handle_message
// hands the delivered payload straight to the frame handler.  Every byte
// counted by link stats, every corruption offset chosen by a seeded
// FaultInjector, and every event's FIFO tie-break therefore lands exactly
// where it did when the recorder was itself a netsim::Node; the refactor
// onto the transport abstraction is invisible to the byte-reproducibility
// contracts (integration suite, chaos matrix).
//
// One NetsimTransport is one simulator node (add it with
// Simulator::add_node, same name the protocol object used to have).  Peers
// are registered explicitly: the PeerId<->NodeId map lives here, so the
// protocol layer never sees node ids.
#pragma once

#include <map>

#include "netsim/sim.hpp"
#include "transport/transport.hpp"

namespace spider::transport {

class NetsimTransport final : public Endpoint, public netsim::Node {
 public:
  explicit NetsimTransport(netsim::Simulator& sim) : sim_(sim) {}

  /// Declares that `peer` is reachable at simulator node `node`.  Frames
  /// from `node` are attributed to `peer`; frames from unregistered nodes
  /// are delivered as kUnknownPeer.
  void register_peer(PeerId peer, netsim::NodeId node) {
    peer_nodes_[peer] = node;
    node_peers_[node] = peer;
  }

  // ------------------------------------------------------------- Endpoint
  void set_frame_handler(FrameHandler handler) override { handler_ = std::move(handler); }

  bool send(PeerId to, util::ByteSpan frame) override {
    auto it = peer_nodes_.find(to);
    if (it == peer_nodes_.end()) return false;
    sim_.send(node_id(), it->second, frame);
    return true;
  }

  void schedule_in(Time delay, std::function<void()> fn) override {
    sim_.schedule_in(delay, std::move(fn));
  }

  Time now() const override { return sim_.local_time(node_id()); }

  // ----------------------------------------------------------------- Node
  void handle_message(netsim::NodeId from, util::ByteSpan payload) override {
    if (!handler_) return;
    auto it = node_peers_.find(from);
    handler_(it == node_peers_.end() ? kUnknownPeer : it->second, payload);
  }

 private:
  netsim::Simulator& sim_;
  FrameHandler handler_;
  std::map<PeerId, netsim::NodeId> peer_nodes_;
  std::map<netsim::NodeId, PeerId> node_peers_;
};

}  // namespace spider::transport

// Routing policy: import/export rule engine over communities, neighbors and
// prefixes, plus helpers for the policy archetypes of paper §3.2 (set local
// preference, selective export, partial transit, prefer-customer /
// Gao-Rexford).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "bgp/route.hpp"

namespace spider::bgp {

/// Business relationship of a neighbor, for Gao-Rexford style policies.
enum class Relationship : std::uint8_t { kCustomer, kPeer, kProvider };

/// Conventional local-pref tiers used throughout the examples and tests.
constexpr std::uint32_t kLocalPrefCustomer = 200;
constexpr std::uint32_t kLocalPrefPeer = 150;
constexpr std::uint32_t kLocalPrefProvider = 100;

/// Predicate over (neighbor, route).  Empty sets mean "match anything".
struct MatchSpec {
  std::set<AsNumber> neighbors;         // match when route crosses one of these
  std::set<Community> communities_any;  // match when the route carries any of these
  std::vector<Prefix> prefixes_within;  // match when some entry contains route.prefix

  bool matches(AsNumber neighbor, const Route& route) const;
};

/// What an import rule does to a matched route.
struct ImportAction {
  bool deny = false;
  std::optional<std::uint32_t> set_local_pref;
  std::vector<Community> add_communities;
  std::vector<Community> strip_communities;
};

struct ImportRule {
  MatchSpec match;
  ImportAction action;
};

/// Export rules either deny a route toward a neighbor or adjust communities
/// and AS-path prepending (the community-controlled prepending the paper
/// mentions alongside Figure 2).
struct ExportAction {
  bool deny = false;
  std::vector<Community> add_communities;
  std::vector<Community> strip_communities;
  /// Extra copies of the exporting AS's own number prepended to the path
  /// (traffic engineering: makes the route look longer to this neighbor).
  std::uint8_t prepend = 0;
};

struct ExportRule {
  MatchSpec match;  // neighbors = the *target* neighbors of the export
  ExportAction action;
};

/// Per-AS policy.  Import runs before the route enters Adj-RIB-In; export
/// runs per target neighbor as the best route is propagated.  Rules apply
/// first-match-wins; unmatched routes are accepted/exported unchanged.
class Policy {
 public:
  void add_import_rule(ImportRule rule) { import_rules_.push_back(std::move(rule)); }
  void add_export_rule(ExportRule rule) { export_rules_.push_back(std::move(rule)); }

  /// Applies import policy to a route learned from `neighbor`; returns
  /// nullopt when the route is filtered.  Loop detection (own ASN in path)
  /// is handled here as well.
  std::optional<Route> import(AsNumber self, AsNumber neighbor, Route route) const;

  /// Applies export policy for a route being sent to `neighbor`; returns
  /// nullopt when export is denied.  `self` is the exporting AS's own
  /// number, used for prepend actions (0 disables prepending).
  std::optional<Route> apply_export(AsNumber neighbor, Route route, AsNumber self = 0) const;

  std::size_t import_rule_count() const { return import_rules_.size(); }
  std::size_t export_rule_count() const { return export_rules_.size(); }

 private:
  std::vector<ImportRule> import_rules_;
  std::vector<ExportRule> export_rules_;
};

/// Builds a Gao-Rexford policy for an AS with the given neighbor
/// relationships: customer routes get local-pref 200, peer 150, provider
/// 100; customer routes are exported to everyone, peer/provider routes only
/// to customers (the "valley-free" export rule).
Policy gao_rexford_policy(const std::vector<std::pair<AsNumber, Relationship>>& neighbors);

/// Community an AS advertises for "set my routes to local-pref <tier>"
/// (paper §3.2 "Set local preference", supported by 57 of 88 ASes in [29]).
/// Tier 0 is the default/highest.
Community lp_tier_community(std::uint16_t asn, std::uint16_t tier);

/// Community for "do not export my route to AS <target>" (paper §3.2
/// "Selective export by specific AS").
Community no_export_to_community(std::uint16_t target_asn);

}  // namespace spider::bgp

#include "bgp/rib.hpp"

namespace spider::bgp {

void AdjRibIn::set(AsNumber neighbor, Route route) {
  by_neighbor_[neighbor][route.prefix] = std::move(route);
}

void AdjRibIn::withdraw(AsNumber neighbor, const Prefix& prefix) {
  auto it = by_neighbor_.find(neighbor);
  if (it == by_neighbor_.end()) return;
  it->second.erase(prefix);
  if (it->second.empty()) by_neighbor_.erase(it);
}

const Route* AdjRibIn::find(AsNumber neighbor, const Prefix& prefix) const {
  auto it = by_neighbor_.find(neighbor);
  if (it == by_neighbor_.end()) return nullptr;
  auto rit = it->second.find(prefix);
  return rit == it->second.end() ? nullptr : &rit->second;
}

std::vector<Route> AdjRibIn::candidates(const Prefix& prefix) const {
  std::vector<Route> out;
  for (const auto& [neighbor, routes] : by_neighbor_) {
    auto it = routes.find(prefix);
    if (it != routes.end()) out.push_back(it->second);
  }
  return out;
}

std::set<Prefix> AdjRibIn::prefixes() const {
  std::set<Prefix> out;
  for (const auto& [neighbor, routes] : by_neighbor_) {
    for (const auto& [prefix, route] : routes) out.insert(prefix);
  }
  return out;
}

std::map<AsNumber, Route> AdjRibIn::offers(const Prefix& prefix) const {
  std::map<AsNumber, Route> out;
  for (const auto& [neighbor, routes] : by_neighbor_) {
    auto it = routes.find(prefix);
    if (it != routes.end()) out.emplace(neighbor, it->second);
  }
  return out;
}

std::size_t AdjRibIn::size() const {
  std::size_t total = 0;
  for (const auto& [neighbor, routes] : by_neighbor_) total += routes.size();
  return total;
}

bool LocRib::set(const Prefix& prefix, std::optional<Route> route) {
  auto it = entries_.find(prefix);
  if (!route) {
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }
  if (it != entries_.end() && it->second == *route) return false;
  entries_[prefix] = std::move(*route);
  return true;
}

const Route* LocRib::find(const Prefix& prefix) const {
  auto it = entries_.find(prefix);
  return it == entries_.end() ? nullptr : &it->second;
}

bool AdjRibOut::set(AsNumber neighbor, const Prefix& prefix, std::optional<Route> route) {
  auto& routes = by_neighbor_[neighbor];
  auto it = routes.find(prefix);
  if (!route) {
    if (it == routes.end()) return false;
    routes.erase(it);
    return true;
  }
  if (it != routes.end() && it->second == *route) return false;
  routes[prefix] = std::move(*route);
  return true;
}

const Route* AdjRibOut::find(AsNumber neighbor, const Prefix& prefix) const {
  auto it = by_neighbor_.find(neighbor);
  if (it == by_neighbor_.end()) return nullptr;
  auto rit = it->second.find(prefix);
  return rit == it->second.end() ? nullptr : &rit->second;
}

const std::map<Prefix, Route>& AdjRibOut::routes_to(AsNumber neighbor) const {
  static const std::map<Prefix, Route> kEmpty;
  auto it = by_neighbor_.find(neighbor);
  return it == by_neighbor_.end() ? kEmpty : it->second;
}

}  // namespace spider::bgp

#include "bgp/speaker.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace spider::bgp {

Speaker::Speaker(netsim::Simulator& sim, AsNumber asn, Policy policy)
    : sim_(sim), asn_(asn), policy_(std::move(policy)) {}

void Speaker::add_neighbor(AsNumber neighbor_as, netsim::NodeId node) {
  neighbors_[neighbor_as] = node;
  node_to_as_[node] = neighbor_as;
}

void Speaker::add_observed_neighbor(AsNumber neighbor_as) {
  neighbors_[neighbor_as] = kObservedOnly;
}

void Speaker::originate(const Prefix& prefix, std::vector<Community> communities) {
  Route route;
  route.prefix = prefix;
  route.learned_from = 0;
  route.origin = Origin::kIgp;
  route.communities = std::move(communities);
  local_routes_[prefix] = std::move(route);
  reselect(prefix);
}

void Speaker::withdraw_origin(const Prefix& prefix) {
  local_routes_.erase(prefix);
  reselect(prefix);
}

void Speaker::inject(AsNumber neighbor_as, const Update& update) {
  process_update(neighbor_as, update);
}

void Speaker::handle_message(netsim::NodeId from, util::ByteSpan payload) {
  auto it = node_to_as_.find(from);
  if (it == node_to_as_.end()) throw std::logic_error("Speaker: message from unknown neighbor");
  process_update(it->second, Update::decode(payload));
}

void Speaker::enable_flap_damping(FlapDampingConfig config) { damper_.emplace(config); }

void Speaker::process_update(AsNumber neighbor_as, const Update& update) {
  updates_received_ += 1;
  SPIDER_OBS_COUNT("bgp/updates_processed", 1);
  SPIDER_OBS_COUNT("bgp/routes_announced_in", update.announced.size());
  SPIDER_OBS_COUNT("bgp/routes_withdrawn_in", update.withdrawn.size());
  for (const Prefix& prefix : update.withdrawn) {
    if (observer_.on_withdraw_in) observer_.on_withdraw_in(neighbor_as, prefix);
    if (damper_) {
      damper_->record_flap(neighbor_as, prefix, sim_.now());
      suppressed_routes_.erase({neighbor_as, prefix});
    }
    adj_in_.withdraw(neighbor_as, prefix);
    reselect(prefix);
  }
  for (const Route& raw : update.announced) {
    std::optional<Route> imported;
    if (faulty_filter_neighbors_.count(neighbor_as) == 0) {
      imported = policy_.import(asn_, neighbor_as, raw);
    }
    if (observer_.on_route_in) observer_.on_route_in(neighbor_as, raw, imported);

    if (damper_ && imported) {
      // A re-announcement of a known prefix is a flap — including one that
      // follows a withdrawal (the classic up/down/up oscillation), which is
      // why residual penalty also marks the prefix as known.
      bool prior = adj_in_.find(neighbor_as, raw.prefix) != nullptr ||
                   suppressed_routes_.count({neighbor_as, raw.prefix}) != 0 ||
                   damper_->penalty(neighbor_as, raw.prefix, sim_.now()) > 0;
      if (prior) damper_->record_flap(neighbor_as, raw.prefix, sim_.now());
      if (damper_->suppressed(neighbor_as, raw.prefix, sim_.now())) {
        // Hold the route aside and schedule reinstatement at reuse time.
        suppressed_routes_[{neighbor_as, raw.prefix}] = *imported;
        ++suppressions_;
        adj_in_.withdraw(neighbor_as, raw.prefix);
        reselect(raw.prefix);
        netsim::Time reuse = damper_->reuse_time(neighbor_as, raw.prefix, sim_.now());
        Prefix prefix = raw.prefix;
        sim_.schedule_at(reuse, [this, neighbor_as, prefix] {
          auto it = suppressed_routes_.find({neighbor_as, prefix});
          if (it == suppressed_routes_.end()) return;  // withdrawn meanwhile
          if (damper_->suppressed(neighbor_as, prefix, sim_.now())) return;  // flapped again
          adj_in_.set(neighbor_as, it->second);
          suppressed_routes_.erase(it);
          reselect(prefix);
        });
        continue;
      }
    }

    if (imported) {
      adj_in_.set(neighbor_as, *imported);
    } else {
      // A filtered announcement implicitly withdraws any previous offer.
      adj_in_.withdraw(neighbor_as, raw.prefix);
    }
    reselect(raw.prefix);
  }
}

void Speaker::reselect(const Prefix& prefix) {
  SPIDER_OBS_COUNT("bgp/reselects", 1);
  SPIDER_OBS_SPAN(decision_span, "speaker/decision");
  std::vector<Route> candidates = adj_in_.candidates(prefix);
  auto local_it = local_routes_.find(prefix);
  if (local_it != local_routes_.end()) candidates.push_back(local_it->second);

  std::optional<Route> best = decide(candidates);
  if (!loc_rib_.set(prefix, best)) return;
  if (observer_.on_best_change) observer_.on_best_change(prefix, best);

  for (const auto& [neighbor_as, node] : neighbors_) {
    std::optional<Route> exported;
    if (best && best->learned_from != neighbor_as) {  // split horizon
      exported = policy_.apply_export(neighbor_as, *best, asn_);
      if (!exported && faulty_export_neighbors_.count(neighbor_as) != 0) {
        exported = *best;  // injected fault: export despite policy denial
      }
      if (exported) {
        exported->as_path.insert(exported->as_path.begin(), asn_);
        exported->local_pref = 100;  // local_pref is not transitive
        exported->learned_from = 0;  // set by the receiver's import policy
      }
    }
    if (!adj_out_.set(neighbor_as, prefix, exported)) continue;
    emit_change(neighbor_as, exported, prefix);
  }
}

void Speaker::emit_change(AsNumber neighbor_as, const std::optional<Route>& exported,
                          const Prefix& prefix) {
  if (mrai_ == 0) {
    Update update;
    if (exported) {
      update.announced.push_back(*exported);
    } else {
      update.withdrawn.push_back(prefix);
    }
    send_update(neighbor_as, update);
    return;
  }

  // MRAI path: merge the change into the pending UPDATE (a newer change to
  // the same prefix supersedes the older one).
  Update& pending = pending_updates_[neighbor_as];
  pending.announced.erase(std::remove_if(pending.announced.begin(), pending.announced.end(),
                                         [&](const Route& r) { return r.prefix == prefix; }),
                          pending.announced.end());
  pending.withdrawn.erase(std::remove(pending.withdrawn.begin(), pending.withdrawn.end(), prefix),
                          pending.withdrawn.end());
  if (exported) {
    pending.announced.push_back(*exported);
  } else {
    pending.withdrawn.push_back(prefix);
  }

  auto last = last_sent_.find(neighbor_as);
  netsim::Time ready = (last == last_sent_.end()) ? sim_.now() : last->second + mrai_;
  if (ready <= sim_.now()) {
    flush_pending(neighbor_as);
  } else if (flush_scheduled_.insert(neighbor_as).second) {
    sim_.schedule_at(ready, [this, neighbor_as] {
      flush_scheduled_.erase(neighbor_as);
      flush_pending(neighbor_as);
    });
  }
}

void Speaker::flush_pending(AsNumber neighbor_as) {
  auto it = pending_updates_.find(neighbor_as);
  if (it == pending_updates_.end() || it->second.empty()) return;
  Update update = std::move(it->second);
  it->second = Update{};
  last_sent_[neighbor_as] = sim_.now();
  send_update(neighbor_as, update);
}

void Speaker::send_update(AsNumber neighbor_as, const Update& update) {
  updates_sent_ += 1;
  SPIDER_OBS_COUNT("bgp/updates_sent", 1);
  if (observer_.on_update_out) observer_.on_update_out(neighbor_as, update);
  const netsim::NodeId node = neighbors_.at(neighbor_as);
  if (node != kObservedOnly) sim_.send(node_id(), node, update.encode());
}

}  // namespace spider::bgp

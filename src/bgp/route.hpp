// BGP routes and their attributes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/prefix.hpp"
#include "util/serde.hpp"

namespace spider::bgp {

using AsNumber = std::uint32_t;

/// A 32-bit BGP community, conventionally written asn:value (RFC 1997).
using Community = std::uint32_t;

constexpr Community make_community(std::uint16_t asn, std::uint16_t value) {
  return (static_cast<Community>(asn) << 16) | value;
}
std::string community_str(Community c);

enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

/// One BGP route: a prefix plus the path attributes the decision process
/// and the policy engine read.  `local_pref` is meaningful only inside the
/// AS that set it (it is recomputed by every import policy).
struct Route {
  Prefix prefix;
  /// AS-level path, nearest AS first.  The origin AS is as_path.back().
  std::vector<AsNumber> as_path;
  /// The neighbor AS this route was learned from; 0 for locally originated.
  AsNumber learned_from = 0;
  Origin origin = Origin::kIgp;
  std::uint32_t med = 0;
  std::uint32_t local_pref = 100;
  std::vector<Community> communities;

  bool has_community(Community c) const;
  /// AS-path length (the tie-breaker after local_pref).
  std::size_t path_length() const { return as_path.size(); }
  /// True when `asn` appears in the AS path (loop detection).
  bool path_contains(AsNumber asn) const;

  std::string str() const;

  void encode(util::ByteWriter& w) const;
  static Route decode(util::ByteReader& r);

  bool operator==(const Route&) const = default;
};

/// A BGP UPDATE message: announcements plus withdrawals.
struct Update {
  std::vector<Route> announced;
  std::vector<Prefix> withdrawn;

  bool empty() const { return announced.empty() && withdrawn.empty(); }

  util::Bytes encode() const;
  static Update decode(util::ByteSpan data);
};

}  // namespace spider::bgp

#include "bgp/flap_damping.hpp"

namespace spider::bgp {

double FlapDamper::decayed(const Entry& entry, netsim::Time now) const {
  if (now <= entry.updated_at) return entry.penalty;
  double elapsed = static_cast<double>(now - entry.updated_at);
  double halves = elapsed / static_cast<double>(config_.half_life);
  return entry.penalty * std::pow(0.5, halves);
}

double FlapDamper::record_flap(AsNumber neighbor, const Prefix& prefix, netsim::Time now) {
  Entry& entry = entries_[{neighbor, prefix}];
  entry.penalty = std::min(config_.max_penalty, decayed(entry, now) + config_.flap_penalty);
  entry.updated_at = now;
  if (entry.penalty >= config_.suppress_threshold) entry.suppressed = true;
  return entry.penalty;
}

double FlapDamper::penalty(AsNumber neighbor, const Prefix& prefix, netsim::Time now) const {
  auto it = entries_.find({neighbor, prefix});
  return it == entries_.end() ? 0.0 : decayed(it->second, now);
}

bool FlapDamper::suppressed(AsNumber neighbor, const Prefix& prefix, netsim::Time now) const {
  auto it = entries_.find({neighbor, prefix});
  if (it == entries_.end() || !it->second.suppressed) return false;
  return decayed(it->second, now) > config_.reuse_threshold;
}

netsim::Time FlapDamper::reuse_time(AsNumber neighbor, const Prefix& prefix,
                                    netsim::Time now) const {
  auto it = entries_.find({neighbor, prefix});
  if (it == entries_.end() || !it->second.suppressed) return now;
  double current = decayed(it->second, now);
  if (current <= config_.reuse_threshold) return now;
  // Solve current * 0.5^(t / half_life) = reuse_threshold; the millisecond
  // margin keeps the boundary instant strictly on the reusable side.
  double halves = std::log2(current / config_.reuse_threshold);
  return now + static_cast<netsim::Time>(halves * static_cast<double>(config_.half_life)) + 1000;
}

}  // namespace spider::bgp

#include "bgp/decision.hpp"

#include "obs/metrics.hpp"

namespace spider::bgp {

namespace {

#if !defined(SPIDER_OBS_DISABLED)
/// Decision-step tally: which rule of the decision process settled each
/// pairwise comparison (the paper's §2 "BGP decision process" — local
/// pref, path length, origin, MED, neighbor AS).
void count_step(DecisionStep step) {
  switch (step) {
    case DecisionStep::kLocalPref: SPIDER_OBS_COUNT("bgp/decision_local_pref", 1); break;
    case DecisionStep::kPathLength: SPIDER_OBS_COUNT("bgp/decision_path_length", 1); break;
    case DecisionStep::kOrigin: SPIDER_OBS_COUNT("bgp/decision_origin", 1); break;
    case DecisionStep::kMed: SPIDER_OBS_COUNT("bgp/decision_med", 1); break;
    case DecisionStep::kNeighborAs: SPIDER_OBS_COUNT("bgp/decision_neighbor_as", 1); break;
    case DecisionStep::kTie: SPIDER_OBS_COUNT("bgp/decision_tie", 1); break;
  }
}
#else
inline void count_step(DecisionStep) {}
#endif

}  // namespace

bool better_explained(const Route& a, const Route& b, DecisionStep& step) {
  if (a.local_pref != b.local_pref) {
    step = DecisionStep::kLocalPref;
    return a.local_pref > b.local_pref;
  }
  if (a.path_length() != b.path_length()) {
    step = DecisionStep::kPathLength;
    return a.path_length() < b.path_length();
  }
  if (a.origin != b.origin) {
    step = DecisionStep::kOrigin;
    return static_cast<std::uint8_t>(a.origin) < static_cast<std::uint8_t>(b.origin);
  }
  if (a.learned_from == b.learned_from && a.med != b.med) {
    step = DecisionStep::kMed;
    return a.med < b.med;
  }
  if (a.learned_from != b.learned_from) {
    step = DecisionStep::kNeighborAs;
    return a.learned_from < b.learned_from;
  }
  step = DecisionStep::kTie;
  return false;
}

bool better(const Route& a, const Route& b) {
  DecisionStep step;
  return better_explained(a, b, step);
}

std::optional<Route> decide(const std::vector<Route>& candidates) {
  SPIDER_OBS_COUNT("bgp/decisions", 1);
  if (candidates.empty()) return std::nullopt;
  const Route* best = &candidates.front();
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    DecisionStep step;
    if (better_explained(candidates[i], *best, step)) best = &candidates[i];
    count_step(step);
  }
  return *best;
}

}  // namespace spider::bgp

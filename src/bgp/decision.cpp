#include "bgp/decision.hpp"

namespace spider::bgp {

bool better_explained(const Route& a, const Route& b, DecisionStep& step) {
  if (a.local_pref != b.local_pref) {
    step = DecisionStep::kLocalPref;
    return a.local_pref > b.local_pref;
  }
  if (a.path_length() != b.path_length()) {
    step = DecisionStep::kPathLength;
    return a.path_length() < b.path_length();
  }
  if (a.origin != b.origin) {
    step = DecisionStep::kOrigin;
    return static_cast<std::uint8_t>(a.origin) < static_cast<std::uint8_t>(b.origin);
  }
  if (a.learned_from == b.learned_from && a.med != b.med) {
    step = DecisionStep::kMed;
    return a.med < b.med;
  }
  if (a.learned_from != b.learned_from) {
    step = DecisionStep::kNeighborAs;
    return a.learned_from < b.learned_from;
  }
  step = DecisionStep::kTie;
  return false;
}

bool better(const Route& a, const Route& b) {
  DecisionStep step;
  return better_explained(a, b, step);
}

std::optional<Route> decide(const std::vector<Route>& candidates) {
  if (candidates.empty()) return std::nullopt;
  const Route* best = &candidates.front();
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (better(candidates[i], *best)) best = &candidates[i];
  }
  return *best;
}

}  // namespace spider::bgp

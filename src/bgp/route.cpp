#include "bgp/route.hpp"

#include <algorithm>
#include <sstream>

namespace spider::bgp {

std::string community_str(Community c) {
  std::ostringstream os;
  os << (c >> 16) << ':' << (c & 0xffff);
  return os.str();
}

bool Route::has_community(Community c) const {
  return std::find(communities.begin(), communities.end(), c) != communities.end();
}

bool Route::path_contains(AsNumber asn) const {
  return std::find(as_path.begin(), as_path.end(), asn) != as_path.end();
}

std::string Route::str() const {
  std::ostringstream os;
  os << prefix.str() << " path=[";
  for (std::size_t i = 0; i < as_path.size(); ++i) {
    if (i) os << ' ';
    os << as_path[i];
  }
  os << "] lp=" << local_pref << " med=" << med;
  if (!communities.empty()) {
    os << " comm=";
    for (std::size_t i = 0; i < communities.size(); ++i) {
      if (i) os << ',';
      os << community_str(communities[i]);
    }
  }
  return os.str();
}

void Route::encode(util::ByteWriter& w) const {
  prefix.encode(w);
  w.u16(static_cast<std::uint16_t>(as_path.size()));
  for (AsNumber asn : as_path) w.u32(asn);
  w.u32(learned_from);
  w.u8(static_cast<std::uint8_t>(origin));
  w.u32(med);
  w.u32(local_pref);
  w.u16(static_cast<std::uint16_t>(communities.size()));
  for (Community c : communities) w.u32(c);
}

Route Route::decode(util::ByteReader& r) {
  Route route;
  route.prefix = Prefix::decode(r);
  std::uint16_t path_len = static_cast<std::uint16_t>(r.check_count(r.u16(), 4, "Route as_path"));
  route.as_path.reserve(path_len);
  for (std::uint16_t i = 0; i < path_len; ++i) route.as_path.push_back(r.u32());
  route.learned_from = r.u32();
  std::uint8_t origin = r.u8();
  if (origin > 2) throw util::DecodeError("Route: bad origin");
  route.origin = static_cast<Origin>(origin);
  route.med = r.u32();
  route.local_pref = r.u32();
  std::uint16_t comm_len = static_cast<std::uint16_t>(r.check_count(r.u16(), 4, "Route communities"));
  route.communities.reserve(comm_len);
  for (std::uint16_t i = 0; i < comm_len; ++i) route.communities.push_back(r.u32());
  return route;
}

util::Bytes Update::encode() const {
  util::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(announced.size()));
  for (const Route& route : announced) route.encode(w);
  w.u16(static_cast<std::uint16_t>(withdrawn.size()));
  for (const Prefix& p : withdrawn) p.encode(w);
  return w.take();
}

Update Update::decode(util::ByteSpan data) {
  util::ByteReader r(data);
  Update u;
  // An empty route still encodes to 22 bytes, an empty prefix to 5.
  std::uint16_t n_ann = static_cast<std::uint16_t>(r.check_count(r.u16(), 22, "Update announced"));
  u.announced.reserve(n_ann);
  for (std::uint16_t i = 0; i < n_ann; ++i) u.announced.push_back(Route::decode(r));
  std::uint16_t n_wd = static_cast<std::uint16_t>(r.check_count(r.u16(), 5, "Update withdrawn"));
  u.withdrawn.reserve(n_wd);
  for (std::uint16_t i = 0; i < n_wd; ++i) u.withdrawn.push_back(Prefix::decode(r));
  r.expect_end();
  return u;
}

}  // namespace spider::bgp

// Routing information bases: Adj-RIB-In (per neighbor), Loc-RIB, and
// Adj-RIB-Out (per neighbor), as maintained by every BGP speaker and
// mirrored by the SPIDeR recorder.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bgp/route.hpp"

namespace spider::bgp {

/// Routes received from neighbors, post-import-policy, keyed by
/// (neighbor AS, prefix).  At most one route per neighbor per prefix,
/// exactly as in BGP (a new announcement implicitly replaces the old one).
class AdjRibIn {
 public:
  /// Stores `route` as the current offer from `neighbor`; replaces any prior.
  void set(AsNumber neighbor, Route route);
  /// Removes the neighbor's offer for `prefix`; no-op when absent.
  void withdraw(AsNumber neighbor, const Prefix& prefix);

  const Route* find(AsNumber neighbor, const Prefix& prefix) const;
  /// All current candidate routes for `prefix`, across neighbors.
  std::vector<Route> candidates(const Prefix& prefix) const;
  /// Every prefix with at least one candidate route.
  std::set<Prefix> prefixes() const;
  /// Candidate routes per neighbor for `prefix` (neighbor -> route).
  std::map<AsNumber, Route> offers(const Prefix& prefix) const;

  std::size_t size() const;

 private:
  std::map<AsNumber, std::map<Prefix, Route>> by_neighbor_;
};

/// The selected best route per prefix.
class LocRib {
 public:
  /// Returns true when the entry changed.
  bool set(const Prefix& prefix, std::optional<Route> route);
  const Route* find(const Prefix& prefix) const;
  const std::map<Prefix, Route>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<Prefix, Route> entries_;
};

/// What has actually been advertised to each neighbor (post export policy).
class AdjRibOut {
 public:
  /// Records the route advertised to `neighbor`; nullopt records a
  /// withdrawal. Returns true when this changes the advertised state.
  bool set(AsNumber neighbor, const Prefix& prefix, std::optional<Route> route);
  const Route* find(AsNumber neighbor, const Prefix& prefix) const;
  const std::map<Prefix, Route>& routes_to(AsNumber neighbor) const;

 private:
  std::map<AsNumber, std::map<Prefix, Route>> by_neighbor_;
};

}  // namespace spider::bgp

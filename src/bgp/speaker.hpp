// A BGP speaker: one per AS in our AS-level simulation (standing in for the
// paper's Quagga daemons).  It applies import policy, runs the decision
// process, applies export policy, and emits UPDATEs to neighbors over the
// simulator.  Observer hooks let the SPIDeR recorder mirror the message
// flow, which is exactly how the paper deploys SPIDeR ("it opens BGP
// connections to the border routers in its local AS [and] mirrors their
// routing state", §6.1).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bgp/decision.hpp"
#include "bgp/flap_damping.hpp"
#include "bgp/policy.hpp"
#include "bgp/rib.hpp"
#include "netsim/sim.hpp"

namespace spider::bgp {

class Speaker : public netsim::Node {
 public:
  /// Hooks for mirroring the message flow (SPIDeR recorder, statistics).
  struct Observer {
    /// A post-import route was accepted (or filtered => nullopt) from a
    /// neighbor.  `raw` is the route as received, pre-import-policy.
    std::function<void(AsNumber from, const Route& raw, const std::optional<Route>& imported)>
        on_route_in;
    /// A withdrawal was received from a neighbor.
    std::function<void(AsNumber from, const Prefix& prefix)> on_withdraw_in;
    /// An UPDATE is about to be sent to a neighbor.
    std::function<void(AsNumber to, const Update& update)> on_update_out;
    /// The Loc-RIB best route for a prefix changed (nullopt = no route).
    std::function<void(const Prefix& prefix, const std::optional<Route>& best)> on_best_change;
  };

  Speaker(netsim::Simulator& sim, AsNumber asn, Policy policy);

  /// Declares `neighbor_as` reachable at simulator node `node`.  The
  /// underlying netsim link must exist before messages flow.
  void add_neighbor(AsNumber neighbor_as, netsim::NodeId node);

  /// Declares a neighbor with no simulator delivery: the full export
  /// pipeline runs for it — policy, adj-rib-out, observer hooks — but no
  /// message is encoded or sent.  Process-hosted deployments use this when
  /// the mirror observer is the consumer and the BGP session itself lives
  /// in another OS process.
  void add_observed_neighbor(AsNumber neighbor_as);

  /// Sentinel NodeId marking an observed-only neighbor.
  static constexpr netsim::NodeId kObservedOnly = ~netsim::NodeId{0};

  /// Originates a prefix from this AS (installs a local route and
  /// propagates it).
  void originate(const Prefix& prefix, std::vector<Community> communities = {});

  /// Withdraws a locally originated prefix.
  void withdraw_origin(const Prefix& prefix);

  /// Inject an UPDATE as if received from `neighbor_as` without a simulator
  /// message (used by the trace replayer, mirroring the paper's injection
  /// of a RouteViews trace at AS 2).
  void inject(AsNumber neighbor_as, const Update& update);

  void handle_message(netsim::NodeId from, util::ByteSpan payload) override;

  AsNumber asn() const { return asn_; }
  const AdjRibIn& adj_rib_in() const { return adj_in_; }
  const LocRib& loc_rib() const { return loc_rib_; }
  const AdjRibOut& adj_rib_out() const { return adj_out_; }
  const Policy& policy() const { return policy_; }
  const std::map<AsNumber, netsim::NodeId>& neighbors() const { return neighbors_; }

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Minimum Route Advertisement Interval: updates to a neighbor are
  /// batched so at most one UPDATE per `interval` goes out (0 = disabled).
  /// This is one of the BGP delay sources §6.4's loose-synchronization
  /// window exists to absorb.
  void set_mrai(netsim::Time interval) { mrai_ = interval; }

  /// Enables RFC 2439 route flap damping on received routes (the other
  /// §6.4 delay source).  Flappy prefixes are suppressed until their
  /// penalty decays below the reuse threshold, then reinstated.
  void enable_flap_damping(FlapDampingConfig config = {});
  const FlapDamper* flap_damper() const { return damper_ ? &*damper_ : nullptr; }
  std::uint64_t suppressions() const { return suppressions_; }

  /// Test/fault hook: when set, routes from this neighbor are silently
  /// dropped at import time *without* policy justification — the
  /// "overaggressive filter" fault of §7.4.
  void inject_import_filter_fault(AsNumber neighbor) { faulty_filter_neighbors_.insert(neighbor); }

  /// Test/fault hook: export routes to this neighbor even when export
  /// policy denies them — the "wrongly exporting" fault of §7.4.
  void inject_export_fault(AsNumber neighbor) { faulty_export_neighbors_.insert(neighbor); }

  std::uint64_t updates_received() const { return updates_received_; }
  std::uint64_t updates_sent() const { return updates_sent_; }

 private:
  void process_update(AsNumber neighbor_as, const Update& update);
  /// Re-runs the decision process for `prefix` and propagates any change.
  void reselect(const Prefix& prefix);
  /// Queues one change toward a neighbor, honoring MRAI.
  void emit_change(AsNumber neighbor_as, const std::optional<Route>& exported,
                   const Prefix& prefix);
  void send_update(AsNumber neighbor_as, const Update& update);
  void flush_pending(AsNumber neighbor_as);

  netsim::Simulator& sim_;
  AsNumber asn_;
  Policy policy_;
  AdjRibIn adj_in_;
  LocRib loc_rib_;
  AdjRibOut adj_out_;
  std::map<AsNumber, netsim::NodeId> neighbors_;
  std::map<netsim::NodeId, AsNumber> node_to_as_;
  std::map<Prefix, Route> local_routes_;
  Observer observer_;
  std::set<AsNumber> faulty_filter_neighbors_;
  std::set<AsNumber> faulty_export_neighbors_;
  std::uint64_t updates_received_ = 0;
  std::uint64_t updates_sent_ = 0;
  netsim::Time mrai_ = 0;
  std::map<AsNumber, Update> pending_updates_;
  std::map<AsNumber, netsim::Time> last_sent_;
  std::set<AsNumber> flush_scheduled_;
  std::optional<FlapDamper> damper_;
  std::map<std::pair<AsNumber, Prefix>, Route> suppressed_routes_;
  std::uint64_t suppressions_ = 0;
};

}  // namespace spider::bgp

// The standard BGP best-route decision process (paper §3: "The decision
// procedure is lexicographic, beginning with the local preference attribute
// and proceeding down a chain of tie-breakers").
#pragma once

#include <optional>
#include <vector>

#include "bgp/route.hpp"

namespace spider::bgp {

/// Ordered reasons a route wins; exposed so tests and the NetReview-style
/// auditor can explain *why* one route beat another.
enum class DecisionStep : std::uint8_t {
  kLocalPref,
  kPathLength,
  kOrigin,
  kMed,
  kNeighborAs,
  kTie,
};

/// Returns true when `a` is strictly preferred over `b` under the standard
/// lexicographic decision process:
///   1. higher local_pref
///   2. shorter AS path
///   3. lower origin (IGP < EGP < INCOMPLETE)
///   4. lower MED (compared only between routes from the same neighbor AS)
///   5. lower neighbor AS number (deterministic tie-break, standing in for
///      the lowest-router-id step of real routers)
bool better(const Route& a, const Route& b);

/// Like better(), but also reports which step decided.
bool better_explained(const Route& a, const Route& b, DecisionStep& step);

/// Runs the decision process over a candidate set; returns the best route,
/// or nullopt when `candidates` is empty.
std::optional<Route> decide(const std::vector<Route>& candidates);

}  // namespace spider::bgp

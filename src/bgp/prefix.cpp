#include "bgp/prefix.hpp"

#include <charconv>
#include <stdexcept>

namespace spider::bgp {

namespace {
std::uint32_t mask_for(std::uint8_t length) {
  return length == 0 ? 0 : (length == 32 ? 0xffffffffu : ~((1u << (32 - length)) - 1));
}

std::uint32_t parse_octet(std::string_view text, std::size_t& pos) {
  std::uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data() + pos, text.data() + text.size(), value);
  if (ec != std::errc{} || value > 255) throw std::invalid_argument("Prefix::parse: bad octet");
  pos = static_cast<std::size_t>(ptr - text.data());
  return value;
}
}  // namespace

Prefix::Prefix(std::uint32_t bits, std::uint8_t length) : length_(length) {
  if (length > 32) throw std::invalid_argument("Prefix: length > 32");
  bits_ = bits & mask_for(length);
}

Prefix Prefix::parse(std::string_view text) {
  std::size_t pos = 0;
  std::uint32_t addr = 0;
  for (int octet = 0; octet < 4; ++octet) {
    addr = (addr << 8) | parse_octet(text, pos);
    if (octet < 3) {
      if (pos >= text.size() || text[pos] != '.') throw std::invalid_argument("Prefix::parse: expected '.'");
      ++pos;
    }
  }
  if (pos >= text.size() || text[pos] != '/') throw std::invalid_argument("Prefix::parse: expected '/'");
  ++pos;
  std::uint32_t len = 0;
  auto [ptr, ec] = std::from_chars(text.data() + pos, text.data() + text.size(), len);
  if (ec != std::errc{} || len > 32 || ptr != text.data() + text.size()) {
    throw std::invalid_argument("Prefix::parse: bad length");
  }
  return Prefix(addr, static_cast<std::uint8_t>(len));
}

bool Prefix::contains(const Prefix& other) const {
  if (other.length_ < length_) return false;
  return (other.bits_ & mask_for(length_)) == bits_;
}

std::string Prefix::str() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u/%u", bits_ >> 24, (bits_ >> 16) & 0xff,
                (bits_ >> 8) & 0xff, bits_ & 0xff, length_);
  return buf;
}

void Prefix::encode(util::ByteWriter& w) const {
  w.u32(bits_);
  w.u8(length_);
}

Prefix Prefix::decode(util::ByteReader& r) {
  std::uint32_t bits = r.u32();
  std::uint8_t length = r.u8();
  if (length > 32) throw util::DecodeError("Prefix: length > 32");
  Prefix p(bits, length);
  if (p.bits() != bits) throw util::DecodeError("Prefix: non-canonical bits");
  return p;
}

}  // namespace spider::bgp

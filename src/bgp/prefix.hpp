// IPv4 prefixes, the keys of every routing table and of the MTT.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/serde.hpp"

namespace spider::bgp {

/// An IPv4 prefix: `length` leading bits of `bits` (host byte order); all
/// bits beyond `length` are kept zero, which makes comparison/total order
/// well-defined.  Length 0 (the default route) is valid.
class Prefix {
 public:
  Prefix() = default;
  /// Masks `bits` down to `length` bits. length must be <= 32.
  Prefix(std::uint32_t bits, std::uint8_t length);

  /// Parses "a.b.c.d/len"; throws std::invalid_argument on malformed input.
  static Prefix parse(std::string_view text);

  std::uint32_t bits() const { return bits_; }
  std::uint8_t length() const { return length_; }

  /// The i-th bit of the prefix (0 = most significant). i < length().
  bool bit(std::uint8_t i) const { return (bits_ >> (31 - i)) & 1u; }

  /// True when `other` is equal to or more specific than this prefix.
  bool contains(const Prefix& other) const;

  std::string str() const;

  void encode(util::ByteWriter& w) const;
  static Prefix decode(util::ByteReader& r);

  auto operator<=>(const Prefix&) const = default;

 private:
  std::uint32_t bits_ = 0;
  std::uint8_t length_ = 0;
};

}  // namespace spider::bgp

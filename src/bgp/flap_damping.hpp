// BGP route flap damping (RFC 2439), one of the update-delay mechanisms
// §6.4's loose-synchronization window exists to absorb.
//
// Classic penalty model: each flap (withdrawal or attribute change) adds a
// fixed penalty; the penalty decays exponentially with a configurable
// half-life; a prefix whose penalty crosses the suppress threshold is
// dampened (its updates are not propagated) until decay brings it below
// the reuse threshold.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>

#include "bgp/prefix.hpp"
#include "bgp/route.hpp"
#include "netsim/sim.hpp"

namespace spider::bgp {

struct FlapDampingConfig {
  double flap_penalty = 1000.0;
  double suppress_threshold = 2000.0;
  double reuse_threshold = 750.0;
  netsim::Time half_life = 15LL * 60 * netsim::kMicrosPerSecond;  // 15 min
  /// Penalties are capped so a route cannot be dampened forever.
  double max_penalty = 12000.0;
};

/// Tracks flap penalties per (neighbor, prefix).
class FlapDamper {
 public:
  explicit FlapDamper(FlapDampingConfig config = {}) : config_(config) {}

  /// Records one flap at time `now`; returns the updated penalty.
  double record_flap(AsNumber neighbor, const Prefix& prefix, netsim::Time now);

  /// Current decayed penalty.
  double penalty(AsNumber neighbor, const Prefix& prefix, netsim::Time now) const;

  /// True while the route is suppressed.  Suppression starts when the
  /// penalty crosses suppress_threshold and ends when it decays below
  /// reuse_threshold.
  bool suppressed(AsNumber neighbor, const Prefix& prefix, netsim::Time now) const;

  /// Time at which a currently suppressed route becomes reusable
  /// (now if it is not suppressed).
  netsim::Time reuse_time(AsNumber neighbor, const Prefix& prefix, netsim::Time now) const;

  const FlapDampingConfig& config() const { return config_; }

 private:
  struct Entry {
    double penalty = 0;
    netsim::Time updated_at = 0;
    bool suppressed = false;
  };

  double decayed(const Entry& entry, netsim::Time now) const;

  FlapDampingConfig config_;
  std::map<std::pair<AsNumber, Prefix>, Entry> entries_;
};

}  // namespace spider::bgp

// A binary prefix trie with longest-prefix match.
//
// The forwarding-table view of a RIB: inserting each Loc-RIB prefix lets a
// node answer "which route forwards this address?" — the data-plane
// counterpart of the structures SPIDeR verifies, and the natural index for
// subtree verification (§7.3: "its neighbors could trigger verification
// for smaller subtrees, e.g., all prefixes in 32.0.0/8").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bgp/prefix.hpp"

namespace spider::bgp {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() : nodes_(1) {}

  /// Inserts or replaces the value at `prefix`. Returns true on insert,
  /// false on replace.
  bool insert(const Prefix& prefix, Value value) {
    std::uint32_t node = walk_create(prefix);
    bool fresh = !nodes_[node].value.has_value();
    nodes_[node].value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Removes the value at `prefix`; returns true when something was removed.
  /// (Nodes are not physically reclaimed; BGP tables churn in place.)
  bool erase(const Prefix& prefix) {
    auto node = walk(prefix);
    if (!node || !nodes_[*node].value.has_value()) return false;
    nodes_[*node].value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  const Value* find(const Prefix& prefix) const {
    auto node = walk(prefix);
    if (!node) return nullptr;
    const auto& slot = nodes_[*node].value;
    return slot ? &*slot : nullptr;
  }

  /// Longest-prefix match for a full 32-bit address.  Returns the value of
  /// the most specific covering prefix, or nullptr.
  const Value* longest_match(std::uint32_t address) const {
    const Value* best = nullptr;
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth <= 32; ++depth) {
      if (nodes_[node].value) best = &*nodes_[node].value;
      if (depth == 32) break;
      bool bit = (address >> (31 - depth)) & 1u;
      std::uint32_t next = bit ? nodes_[node].one : nodes_[node].zero;
      if (next == kNone) break;
      node = next;
    }
    return best;
  }

  /// The most specific covering prefix itself (with its value).
  std::optional<std::pair<Prefix, const Value*>> longest_match_prefix(
      std::uint32_t address) const {
    std::optional<std::pair<Prefix, const Value*>> best;
    std::uint32_t node = 0;
    std::uint32_t bits = 0;
    for (std::uint8_t depth = 0; depth <= 32; ++depth) {
      if (nodes_[node].value) best = {Prefix(bits, depth), &*nodes_[node].value};
      if (depth == 32) break;
      bool bit = (address >> (31 - depth)) & 1u;
      std::uint32_t next = bit ? nodes_[node].one : nodes_[node].zero;
      if (next == kNone) break;
      if (bit) bits |= 1u << (31 - depth);
      node = next;
    }
    return best;
  }

  /// Visits every (prefix, value) inside `within` in lexicographic order —
  /// the enumeration behind subtree verification.
  template <typename Fn>
  void visit_within(const Prefix& within, Fn&& fn) const {
    auto node = walk(within);
    if (!node) return;
    visit(*node, within.bits(), within.length(), fn);
  }

  std::size_t size() const { return size_; }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Node {
    std::uint32_t zero = kNone;
    std::uint32_t one = kNone;
    std::optional<Value> value;
  };

  std::optional<std::uint32_t> walk(const Prefix& prefix) const {
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      std::uint32_t next = prefix.bit(depth) ? nodes_[node].one : nodes_[node].zero;
      if (next == kNone) return std::nullopt;
      node = next;
    }
    return node;
  }

  std::uint32_t walk_create(const Prefix& prefix) {
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      bool bit = prefix.bit(depth);
      std::uint32_t next = bit ? nodes_[node].one : nodes_[node].zero;
      if (next == kNone) {
        next = static_cast<std::uint32_t>(nodes_.size());
        (bit ? nodes_[node].one : nodes_[node].zero) = next;
        nodes_.emplace_back();
      }
      node = next;
    }
    return node;
  }

  template <typename Fn>
  void visit(std::uint32_t node, std::uint32_t bits, std::uint8_t depth, Fn& fn) const {
    if (nodes_[node].value) fn(Prefix(bits, depth), *nodes_[node].value);
    if (depth == 32) return;
    if (nodes_[node].zero != kNone) visit(nodes_[node].zero, bits, static_cast<std::uint8_t>(depth + 1), fn);
    if (nodes_[node].one != kNone) {
      visit(nodes_[node].one, bits | (1u << (31 - depth)), static_cast<std::uint8_t>(depth + 1), fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace spider::bgp

#include "bgp/policy.hpp"

#include <algorithm>

namespace spider::bgp {

namespace {
void strip(std::vector<Community>& communities, const std::vector<Community>& victims) {
  communities.erase(std::remove_if(communities.begin(), communities.end(),
                                   [&victims](Community c) {
                                     return std::find(victims.begin(), victims.end(), c) !=
                                            victims.end();
                                   }),
                    communities.end());
}

void add_unique(std::vector<Community>& communities, const std::vector<Community>& extra) {
  for (Community c : extra) {
    if (std::find(communities.begin(), communities.end(), c) == communities.end()) {
      communities.push_back(c);
    }
  }
}
}  // namespace

bool MatchSpec::matches(AsNumber neighbor, const Route& route) const {
  if (!neighbors.empty() && neighbors.count(neighbor) == 0) return false;
  if (!communities_any.empty()) {
    bool any = std::any_of(route.communities.begin(), route.communities.end(),
                           [this](Community c) { return communities_any.count(c) != 0; });
    if (!any) return false;
  }
  if (!prefixes_within.empty()) {
    bool any = std::any_of(prefixes_within.begin(), prefixes_within.end(),
                           [&route](const Prefix& p) { return p.contains(route.prefix); });
    if (!any) return false;
  }
  return true;
}

std::optional<Route> Policy::import(AsNumber self, AsNumber neighbor, Route route) const {
  if (route.path_contains(self)) return std::nullopt;  // loop prevention
  for (const ImportRule& rule : import_rules_) {
    if (!rule.match.matches(neighbor, route)) continue;
    if (rule.action.deny) return std::nullopt;
    if (rule.action.set_local_pref) route.local_pref = *rule.action.set_local_pref;
    strip(route.communities, rule.action.strip_communities);
    add_unique(route.communities, rule.action.add_communities);
    break;  // first match wins
  }
  route.learned_from = neighbor;
  return route;
}

std::optional<Route> Policy::apply_export(AsNumber neighbor, Route route, AsNumber self) const {
  for (const ExportRule& rule : export_rules_) {
    if (!rule.match.matches(neighbor, route)) continue;
    if (rule.action.deny) return std::nullopt;
    strip(route.communities, rule.action.strip_communities);
    add_unique(route.communities, rule.action.add_communities);
    if (self != 0) {
      for (std::uint8_t i = 0; i < rule.action.prepend; ++i) {
        route.as_path.insert(route.as_path.begin(), self);
      }
    }
    break;
  }
  return route;
}

Policy gao_rexford_policy(const std::vector<std::pair<AsNumber, Relationship>>& neighbors) {
  std::set<AsNumber> customers, peers, providers, non_customers;
  for (const auto& [asn, rel] : neighbors) {
    switch (rel) {
      case Relationship::kCustomer: customers.insert(asn); break;
      case Relationship::kPeer: peers.insert(asn); non_customers.insert(asn); break;
      case Relationship::kProvider: providers.insert(asn); non_customers.insert(asn); break;
    }
  }

  // Provenance is not carried across ASes by local_pref, so import rules tag
  // non-customer routes with internal communities; export rules match the
  // tags to enforce valley-free export and scrub them before the route
  // leaves the AS.
  const Community kFromPeer = make_community(65535, 150);
  const Community kFromProvider = make_community(65535, 100);

  auto tier_rule = [](std::set<AsNumber> from, std::uint32_t pref, std::vector<Community> tags) {
    ImportRule rule;
    rule.match.neighbors = std::move(from);
    rule.action.set_local_pref = pref;
    rule.action.add_communities = std::move(tags);
    return rule;
  };

  Policy policy;
  if (!customers.empty()) policy.add_import_rule(tier_rule(customers, kLocalPrefCustomer, {}));
  if (!peers.empty()) policy.add_import_rule(tier_rule(peers, kLocalPrefPeer, {kFromPeer}));
  if (!providers.empty()) {
    policy.add_import_rule(tier_rule(providers, kLocalPrefProvider, {kFromProvider}));
  }

  if (!non_customers.empty()) {
    ExportRule deny;  // peer/provider routes may only go to customers
    deny.match.neighbors = non_customers;
    deny.match.communities_any = {kFromPeer, kFromProvider};
    deny.action.deny = true;
    policy.add_export_rule(std::move(deny));
  }
  ExportRule scrub;  // internal tags never leave the AS
  scrub.action.strip_communities = {kFromPeer, kFromProvider};
  policy.add_export_rule(std::move(scrub));
  return policy;
}

Community lp_tier_community(std::uint16_t asn, std::uint16_t tier) {
  return make_community(asn, static_cast<std::uint16_t>(100 + tier));
}

Community no_export_to_community(std::uint16_t target_asn) {
  return make_community(65534, target_asn);
}

}  // namespace spider::bgp

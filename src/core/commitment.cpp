#include "core/commitment.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/sha2_multi.hpp"

namespace spider::core {

Digest20 bit_leaf_hash(bool bit, const Digest20& x) {
  std::uint8_t b = bit ? 1 : 0;
  return crypto::digest20_concat({ByteSpan{&b, 1}, ByteSpan{x.data(), x.size()}});
}

void bit_leaf_hash_batch(const std::uint8_t* bits, const Digest20* xs, std::size_t n,
                         Digest20* out) {
  constexpr std::size_t kChunk = 64;
  constexpr std::size_t kMsg = 1 + sizeof(Digest20);
  std::uint8_t buf[kChunk * kMsg];
  ByteSpan spans[kChunk];
  std::size_t i = 0;
  while (i < n) {
    const std::size_t g = std::min(kChunk, n - i);
    for (std::size_t k = 0; k < g; ++k) {
      std::uint8_t* m = buf + k * kMsg;
      m[0] = bits[i + k] ? 1 : 0;
      std::memcpy(m + 1, xs[i + k].data(), xs[i + k].size());
      spans[k] = ByteSpan{m, kMsg};
    }
    crypto::digest20_batch(spans, g, out + i);
    i += g;
  }
}

namespace {
Digest20 root_of(const std::vector<Digest20>& leaves) {
  crypto::Sha512 h;
  for (const Digest20& leaf : leaves) h.update(ByteSpan{leaf.data(), leaf.size()});
  auto full = h.finish();
  Digest20 out{};
  std::copy(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(out.size()), out.begin());
  return out;
}
}  // namespace

FlatCommitment::FlatCommitment(const std::vector<bool>& bits, const CommitmentPrf& prf)
    : bits_(bits) {
  if (bits.empty()) throw std::invalid_argument("FlatCommitment: no bits");
  const std::size_t k = bits.size();
  std::vector<std::uint64_t> indices(k);
  for (std::size_t i = 0; i < k; ++i) indices[i] = i;
  std::vector<std::uint8_t> plain(k);
  for (std::size_t i = 0; i < k; ++i) plain[i] = bits[i] ? 1 : 0;
  xs_.resize(k);
  prf.bit_randomness_batch(indices.data(), k, xs_.data());
  leaves_.resize(k);
  bit_leaf_hash_batch(plain.data(), xs_.data(), k, leaves_.data());
  root_ = root_of(leaves_);
}

FlatBitProof FlatCommitment::prove(std::uint32_t index) const {
  if (index >= bits_.size()) throw std::out_of_range("FlatCommitment::prove: bad index");
  FlatBitProof proof;
  proof.index = index;
  proof.bit = bits_[index];
  proof.x = xs_[index];
  proof.leaves = leaves_;
  // spider-taint: declassify(§4.5: a bit proof reveals (b_i, x_i) for the challenged bit by design; every other bit stays behind its leaf hash)
  return proof;
}

bool FlatCommitment::verify(const Digest20& root, std::uint32_t num_bits,
                            const FlatBitProof& proof) {
  if (proof.index >= num_bits) return false;
  if (proof.leaves.size() != num_bits) return false;
  std::vector<Digest20> leaves = proof.leaves;
  leaves[proof.index] = bit_leaf_hash(proof.bit, proof.x);
  return crypto::constant_time_equal(root_of(leaves), root);
}

Bytes FlatBitProof::encode() const {
  util::ByteWriter w;
  w.u32(index);
  w.u8(bit ? 1 : 0);
  w.digest(x);
  w.u32(static_cast<std::uint32_t>(leaves.size()));
  for (const Digest20& leaf : leaves) w.digest(leaf);
  return w.take();
}

FlatBitProof FlatBitProof::decode(ByteSpan data) {
  util::ByteReader r(data);
  FlatBitProof proof;
  proof.index = r.u32();
  std::uint8_t bit = r.u8();
  if (bit > 1) throw util::DecodeError("FlatBitProof: bad bit");
  proof.bit = bit == 1;
  proof.x = r.digest();
  std::uint32_t n = r.check_count(r.u32(), 20, "FlatBitProof leaves");
  proof.leaves.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) proof.leaves.push_back(r.digest());
  r.expect_end();
  return proof;
}

}  // namespace spider::core

// Flat bit commitments for single-prefix VPref (paper §4.4 step 4):
//   h := H( H(b_1||x_1) || ... || H(b_k||x_k) )
// and the matching bit proofs (§4.5): to prove bit i, reveal (b_i, x_i) and
// the leaf hashes H(b_j||x_j) for every j != i.  The multi-prefix version
// replaces the flat hash list with the MTT (core/mtt.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/random.hpp"
#include "crypto/sha2.hpp"
#include "util/serde.hpp"

namespace spider::core {

using crypto::CommitmentPrf;
using util::Bytes;
using util::ByteSpan;
using util::Digest20;

/// Leaf hash H(b || x) with b serialized as one byte.
Digest20 bit_leaf_hash(bool bit, const Digest20& x);

/// Batch form: out[i] = bit_leaf_hash(bits[i] != 0, xs[i]) for i in [0, n),
/// run through the multi-lane SHA-512 batcher.  Bits are uint8_t (0/1)
/// rather than bool so callers can hand over a plain contiguous array
/// (std::vector<bool> has no data()).
void bit_leaf_hash_batch(const std::uint8_t* bits, const Digest20* xs, std::size_t n,
                         Digest20* out);

/// A proof that bit `index` had value `bit` in a flat commitment.
struct FlatBitProof {
  std::uint32_t index = 0;
  bool bit = false;
  Digest20 x{};
  /// All k leaf hashes; position `index` is ignored by the verifier (it is
  /// recomputed from bit/x), but keeping the full vector keeps the encoding
  /// position-independent.
  std::vector<Digest20> leaves;

  Bytes encode() const;
  static FlatBitProof decode(ByteSpan data);
};

/// The elector-side commitment: knows every bit and every secret bitstring.
class FlatCommitment {
 public:
  /// Commits to `bits`; randomness (the x_i) is drawn from `prf` at
  /// positions 0..k-1, so the same seed reproduces the same commitment
  /// (paper §6.5: only the CSPRNG seed needs to be stored).
  FlatCommitment(const std::vector<bool>& bits, const CommitmentPrf& prf);

  const Digest20& root() const { return root_; }
  std::uint32_t num_bits() const { return static_cast<std::uint32_t>(bits_.size()); }
  bool bit(std::uint32_t index) const { return bits_.at(index); }

  /// Produces the bit proof for `index`.
  FlatBitProof prove(std::uint32_t index) const;

  /// Verifier side: checks that `proof` opens bit `proof.index` of the
  /// commitment with root `root` over `num_bits` bits.
  static bool verify(const Digest20& root, std::uint32_t num_bits, const FlatBitProof& proof);

 private:
  std::vector<bool> bits_;
  // spider-taint: secret
  std::vector<Digest20> xs_;
  std::vector<Digest20> leaves_;
  Digest20 root_{};
};

}  // namespace spider::core

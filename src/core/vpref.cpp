#include "core/vpref.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/ct.hpp"

namespace spider::core {

namespace {

void encode_optional_route(util::ByteWriter& w, const std::optional<bgp::Route>& route) {
  w.u8(route ? 1 : 0);
  if (route) route->encode(w);
}

std::optional<bgp::Route> decode_optional_route(util::ByteReader& r) {
  std::uint8_t flag = r.u8();
  if (flag > 1) throw util::DecodeError("optional route: bad flag");
  if (flag == 0) return std::nullopt;
  return bgp::Route::decode(r);
}

void expect_type(util::ByteReader& r, MsgType type) {
  if (r.u8() != static_cast<std::uint8_t>(type)) throw util::DecodeError("wrong message type");
}

}  // namespace

// ------------------------------------------------------------- registry

void KeyRegistry::add(PartyId id, std::unique_ptr<crypto::Verifier> verifier) {
  verifiers_[id] = std::move(verifier);
}

bool KeyRegistry::verify(PartyId id, ByteSpan message, ByteSpan signature) const {
  auto it = verifiers_.find(id);
  if (it == verifiers_.end()) return false;
  return it->second->verify(message, signature);
}

// ------------------------------------------------------------- envelope

Digest20 SignedEnvelope::digest() const {
  auto bytes = encode();
  return crypto::digest20(bytes);
}

Bytes SignedEnvelope::encode() const {
  util::ByteWriter w;
  w.u32(signer);
  w.bytes(payload);
  w.bytes(signature);
  return w.take();
}

SignedEnvelope SignedEnvelope::decode(ByteSpan data) {
  util::ByteReader r(data);
  SignedEnvelope env;
  env.signer = r.u32();
  env.payload = r.bytes();
  env.signature = r.bytes();
  r.expect_end();
  return env;
}

SignedEnvelope sign_envelope(PartyId signer, const crypto::Signer& key, ByteSpan payload) {
  SignedEnvelope env;
  env.signer = signer;
  env.payload.assign(payload.begin(), payload.end());
  env.signature = key.sign(payload);
  return env;
}

bool check_envelope(const SignedEnvelope& env, const KeyRegistry& keys) {
  return keys.verify(env.signer, env.payload, env.signature);
}

// ------------------------------------------------------------- payloads

Bytes AnnouncePayload::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kAnnounce));
  w.u32(producer);
  w.u32(elector);
  w.u64(round);
  encode_optional_route(w, route);
  return w.take();
}

AnnouncePayload AnnouncePayload::decode(ByteSpan data) {
  util::ByteReader r(data);
  expect_type(r, MsgType::kAnnounce);
  AnnouncePayload p;
  p.producer = r.u32();
  p.elector = r.u32();
  p.round = r.u64();
  p.route = decode_optional_route(r);
  r.expect_end();
  return p;
}

Bytes AckPayload::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kAck));
  w.u32(elector);
  w.u64(round);
  w.digest(announce_digest);
  return w.take();
}

AckPayload AckPayload::decode(ByteSpan data) {
  util::ByteReader r(data);
  expect_type(r, MsgType::kAck);
  AckPayload p;
  p.elector = r.u32();
  p.round = r.u64();
  p.announce_digest = r.digest();
  r.expect_end();
  return p;
}

Bytes CommitPayload::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kCommit));
  w.u32(elector);
  w.u64(round);
  w.u32(num_bits);
  w.digest(root);
  return w.take();
}

CommitPayload CommitPayload::decode(ByteSpan data) {
  util::ByteReader r(data);
  expect_type(r, MsgType::kCommit);
  CommitPayload p;
  p.elector = r.u32();
  p.round = r.u64();
  p.num_bits = r.u32();
  p.root = r.digest();
  r.expect_end();
  return p;
}

Bytes OfferPayload::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kOffer));
  w.u32(elector);
  w.u32(consumer);
  w.u64(round);
  encode_optional_route(w, route);
  w.u8(producer_announce ? 1 : 0);
  if (producer_announce) w.bytes(producer_announce->encode());
  return w.take();
}

OfferPayload OfferPayload::decode(ByteSpan data) {
  util::ByteReader r(data);
  expect_type(r, MsgType::kOffer);
  OfferPayload p;
  p.elector = r.u32();
  p.consumer = r.u32();
  p.round = r.u64();
  p.route = decode_optional_route(r);
  std::uint8_t flag = r.u8();
  if (flag > 1) throw util::DecodeError("OfferPayload: bad flag");
  if (flag == 1) p.producer_announce = SignedEnvelope::decode(r.bytes());
  r.expect_end();
  return p;
}

Bytes BitProofPayload::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kBitProof));
  w.u32(elector);
  w.u64(round);
  w.bytes(proof.encode());
  return w.take();
}

BitProofPayload BitProofPayload::decode(ByteSpan data) {
  util::ByteReader r(data);
  expect_type(r, MsgType::kBitProof);
  BitProofPayload p;
  p.elector = r.u32();
  p.round = r.u64();
  p.proof = FlatBitProof::decode(r.bytes());
  r.expect_end();
  return p;
}

Bytes PromisePayload::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPromise));
  w.u32(elector);
  w.u32(consumer);
  w.bytes(promise.encode());
  return w.take();
}

PromisePayload PromisePayload::decode(ByteSpan data) {
  util::ByteReader r(data);
  expect_type(r, MsgType::kPromise);
  PromisePayload p;
  p.elector = r.u32();
  p.consumer = r.u32();
  p.promise = Promise::decode(r.bytes());
  r.expect_end();
  return p;
}

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kBadSignature: return "bad-signature";
    case FaultKind::kMalformedMessage: return "malformed-message";
    case FaultKind::kMissingMessage: return "missing-message";
    case FaultKind::kInconsistentCommit: return "inconsistent-commit";
    case FaultKind::kMissingBitProof: return "missing-bit-proof";
    case FaultKind::kInvalidBitProof: return "invalid-bit-proof";
    case FaultKind::kOmittedInput: return "omitted-input";
    case FaultKind::kBrokenPromise: return "broken-promise";
  }
  return "unknown";
}

// -------------------------------------------------------------- elector

Elector::Elector(PartyId id, std::uint64_t round, const crypto::Signer& signer,
                 const Classifier& classifier, std::vector<ClassId> true_preference)
    : id_(id),
      round_(round),
      signer_(signer),
      classifier_(classifier),
      true_preference_(std::move(true_preference)) {
  if (true_preference_.size() != classifier_.num_classes()) {
    throw std::invalid_argument("Elector: preference must rank every class");
  }
}

SignedEnvelope Elector::promise_to(PartyId consumer, Promise promise) {
  PromisePayload payload;
  payload.elector = id_;
  payload.consumer = consumer;
  payload.promise = promise;
  promises_.emplace(consumer, std::move(promise));
  return sign_envelope(id_, signer_, payload.encode());
}

SignedEnvelope Elector::receive_announcement(const SignedEnvelope& announce,
                                             const KeyRegistry& keys) {
  if (!check_envelope(announce, keys)) {
    throw std::invalid_argument("Elector: bad announcement signature");
  }
  AnnouncePayload payload = AnnouncePayload::decode(announce.payload);
  if (payload.producer != announce.signer || payload.elector != id_ || payload.round != round_) {
    throw std::invalid_argument("Elector: announcement fields do not match");
  }
  inputs_[payload.producer] = announce;
  routes_[payload.producer] = payload.route;

  AckPayload ack;
  ack.elector = id_;
  ack.round = round_;
  ack.announce_digest = announce.digest();
  return sign_envelope(id_, signer_, ack.encode());
}

std::optional<bgp::Route> Elector::honest_choice() const {
  // Pick the input whose class ranks best in the private total order;
  // among equals, the lowest producer id (a deterministic private tiebreak).
  std::vector<std::uint32_t> rank(classifier_.num_classes());
  for (std::uint32_t pos = 0; pos < true_preference_.size(); ++pos) {
    rank[true_preference_[pos]] = pos;
  }

  std::optional<bgp::Route> best;  // start from ⊥, which is always available
  std::uint32_t best_rank = rank[classifier_.classify(std::nullopt)];
  for (const auto& [producer, route] : routes_) {
    if (faults_.ignore_producers.count(producer) != 0) continue;
    if (!route) continue;
    std::uint32_t r = rank[classifier_.classify(route)];
    if (r < best_rank) {
      best = route;
      best_rank = r;
    }
  }
  return best;
}

void Elector::decide_and_commit(const crypto::Seed& seed) {
  chosen_ = honest_choice();
  chosen_producer_.reset();
  for (const auto& [producer, route] : routes_) {
    if (faults_.ignore_producers.count(producer) != 0) continue;
    if (route && chosen_ && *route == *chosen_) {
      chosen_producer_ = producer;
      break;
    }
  }

  // Step 3: input bits.  b_j = 1 iff some (considered) input is in class j
  // — the always-available null route counts as an input — or class j is
  // worse than the chosen class under at least one promise.
  const std::uint32_t k = classifier_.num_classes();
  bits_.assign(k, false);
  bits_[classifier_.classify(std::nullopt)] = true;
  for (const auto& [producer, route] : routes_) {
    if (faults_.ignore_producers.count(producer) != 0) continue;
    if (route) bits_[classifier_.classify(route)] = true;
  }
  const ClassId chosen_cls = classifier_.classify(chosen_);
  for (ClassId j = 0; j < k; ++j) {
    for (const auto& [consumer, promise] : promises_) {
      if (promise.prefers(chosen_cls, j)) bits_[j] = true;
    }
  }

  commitment_.emplace(bits_, crypto::CommitmentPrf(seed));
  if (!faults_.equivocate_to.empty()) {
    // Equivocation: a second commitment over the same bits with different
    // randomness — same shape, different root.
    crypto::Seed other = seed;
    other.data[0] ^= 0xff;
    equivocal_commitment_.emplace(bits_, crypto::CommitmentPrf(other));
  }
}

SignedEnvelope Elector::commitment_for(PartyId recipient) const {
  if (!commitment_) throw std::logic_error("Elector: commit before requesting commitment");
  const FlatCommitment& c = (faults_.equivocate_to.count(recipient) != 0 && equivocal_commitment_)
                                ? *equivocal_commitment_
                                : *commitment_;
  CommitPayload payload;
  payload.elector = id_;
  payload.round = round_;
  payload.num_bits = c.num_bits();
  payload.root = c.root();
  return sign_envelope(id_, signer_, payload.encode());
}

SignedEnvelope Elector::offer_for(PartyId consumer) const {
  if (!commitment_) throw std::logic_error("Elector: commit before offering");
  auto it = promises_.find(consumer);
  if (it == promises_.end()) throw std::logic_error("Elector: no promise for consumer");

  OfferPayload payload;
  payload.elector = id_;
  payload.consumer = consumer;
  payload.round = round_;

  const ClassId null_cls = classifier_.classify(std::nullopt);
  const ClassId chosen_cls = classifier_.classify(chosen_);
  // Export filtering: when the promise ranks the chosen class below ⊥,
  // offering it would itself be a violation, so a correct elector offers ⊥.
  bool export_denied = it->second.prefers(null_cls, chosen_cls);
  if (faults_.force_export.count(consumer) != 0) export_denied = false;

  if (chosen_ && !export_denied) {
    payload.route = chosen_;
    if (chosen_producer_) {
      auto input_it = inputs_.find(*chosen_producer_);
      if (input_it != inputs_.end()) payload.producer_announce = input_it->second;
    }
  }
  return sign_envelope(id_, signer_, payload.encode());
}

std::optional<SignedEnvelope> Elector::bit_proof_for(ClassId cls) const {
  if (!commitment_) throw std::logic_error("Elector: commit before proving");
  if (faults_.refuse_proof_classes.count(cls) != 0) return std::nullopt;

  BitProofPayload payload;
  payload.elector = id_;
  payload.round = round_;
  payload.proof = commitment_->prove(cls);
  if (faults_.tamper_proof_classes.count(cls) != 0) {
    payload.proof.bit = !payload.proof.bit;  // lie about the bit value
  }
  return sign_envelope(id_, signer_, payload.encode());
}

ClassId Elector::chosen_class() const { return classifier_.classify(chosen_); }

// -------------------------------------------------------------- producer

Producer::Producer(PartyId id, PartyId elector, std::uint64_t round,
                   const crypto::Signer& signer, const Classifier& classifier)
    : id_(id), elector_(elector), round_(round), signer_(signer), classifier_(classifier) {}

SignedEnvelope Producer::announce(std::optional<bgp::Route> route) {
  AnnouncePayload payload;
  payload.producer = id_;
  payload.elector = elector_;
  payload.round = round_;
  payload.route = route;
  my_class_ = route ? std::optional<ClassId>(classifier_.classify(route)) : std::nullopt;
  my_announce_ = sign_envelope(id_, signer_, payload.encode());
  return *my_announce_;
}

std::optional<Detection> Producer::receive_ack(const std::optional<SignedEnvelope>& ack,
                                               const KeyRegistry& keys) {
  if (!ack) {
    return Detection{FaultKind::kMissingMessage, elector_, "no ACK for announcement"};
  }
  if (!check_envelope(*ack, keys) || ack->signer != elector_) {
    return Detection{FaultKind::kBadSignature, elector_, "ACK signature invalid"};
  }
  try {
    AckPayload payload = AckPayload::decode(ack->payload);
    if (payload.elector != elector_ || payload.round != round_ ||
        !crypto::constant_time_equal(payload.announce_digest, my_announce_->digest())) {
      return Detection{FaultKind::kMalformedMessage, elector_, "ACK fields do not match"};
    }
  } catch (const util::DecodeError&) {
    return Detection{FaultKind::kMalformedMessage, elector_, "ACK undecodable"};
  }
  ack_ = ack;
  return std::nullopt;
}

std::optional<Detection> Producer::receive_commitment(const std::optional<SignedEnvelope>& commit,
                                                      const KeyRegistry& keys) {
  if (!commit) return Detection{FaultKind::kMissingMessage, elector_, "no commitment"};
  if (!check_envelope(*commit, keys) || commit->signer != elector_) {
    return Detection{FaultKind::kBadSignature, elector_, "commitment signature invalid"};
  }
  try {
    CommitPayload payload = CommitPayload::decode(commit->payload);
    if (payload.elector != elector_ || payload.round != round_ ||
        payload.num_bits != classifier_.num_classes()) {
      return Detection{FaultKind::kMalformedMessage, elector_, "commitment fields do not match"};
    }
  } catch (const util::DecodeError&) {
    return Detection{FaultKind::kMalformedMessage, elector_, "commitment undecodable"};
  }
  commitment_ = commit;
  return std::nullopt;
}

std::optional<Detection> Producer::check_bit_proof(const std::optional<SignedEnvelope>& proof,
                                                   const KeyRegistry& keys) {
  if (!my_class_) return std::nullopt;  // we sent ⊥: no proof due
  received_proof_ = proof;
  if (!proof) {
    return Detection{FaultKind::kMissingBitProof, elector_, "no proof for my class"};
  }
  if (!check_envelope(*proof, keys) || proof->signer != elector_) {
    return Detection{FaultKind::kBadSignature, elector_, "bit proof signature invalid"};
  }
  if (!commitment_) throw std::logic_error("Producer: commitment missing");
  CommitPayload commit = CommitPayload::decode(commitment_->payload);
  try {
    BitProofPayload payload = BitProofPayload::decode(proof->payload);
    if (payload.elector != elector_ || payload.round != round_ ||
        payload.proof.index != *my_class_) {
      return Detection{FaultKind::kMalformedMessage, elector_, "bit proof fields do not match"};
    }
    if (!FlatCommitment::verify(commit.root, commit.num_bits, payload.proof)) {
      return Detection{FaultKind::kInvalidBitProof, elector_,
                       "proof does not open the commitment"};
    }
    if (!payload.proof.bit) {
      return Detection{FaultKind::kOmittedInput, elector_,
                       "my input's class proven 0: the elector hid my route"};
    }
  } catch (const util::DecodeError&) {
    return Detection{FaultKind::kMalformedMessage, elector_, "bit proof undecodable"};
  }
  return std::nullopt;
}

ProducerChallenge Producer::make_challenge() const {
  if (!my_announce_ || !ack_) throw std::logic_error("Producer: nothing to challenge with");
  ProducerChallenge challenge;
  challenge.announce = *my_announce_;
  challenge.ack = *ack_;
  challenge.received_proof = received_proof_;
  return challenge;
}

// -------------------------------------------------------------- consumer

Consumer::Consumer(PartyId id, PartyId elector, std::uint64_t round, const Classifier& classifier)
    : id_(id), elector_(elector), round_(round), classifier_(classifier) {}

std::optional<Detection> Consumer::receive_promise(const SignedEnvelope& signed_promise,
                                                   const KeyRegistry& keys) {
  if (!check_envelope(signed_promise, keys) || signed_promise.signer != elector_) {
    return Detection{FaultKind::kBadSignature, elector_, "promise signature invalid"};
  }
  try {
    PromisePayload payload = PromisePayload::decode(signed_promise.payload);
    if (payload.elector != elector_ || payload.consumer != id_ ||
        payload.promise.num_classes() != classifier_.num_classes()) {
      return Detection{FaultKind::kMalformedMessage, elector_, "promise fields do not match"};
    }
    promise_ = payload.promise;
  } catch (const util::DecodeError&) {
    return Detection{FaultKind::kMalformedMessage, elector_, "promise undecodable"};
  }
  signed_promise_ = signed_promise;
  return std::nullopt;
}

std::optional<Detection> Consumer::receive_commitment(const std::optional<SignedEnvelope>& commit,
                                                      const KeyRegistry& keys) {
  if (!commit) return Detection{FaultKind::kMissingMessage, elector_, "no commitment"};
  if (!check_envelope(*commit, keys) || commit->signer != elector_) {
    return Detection{FaultKind::kBadSignature, elector_, "commitment signature invalid"};
  }
  try {
    CommitPayload payload = CommitPayload::decode(commit->payload);
    if (payload.elector != elector_ || payload.round != round_ ||
        payload.num_bits != classifier_.num_classes()) {
      return Detection{FaultKind::kMalformedMessage, elector_, "commitment fields do not match"};
    }
  } catch (const util::DecodeError&) {
    return Detection{FaultKind::kMalformedMessage, elector_, "commitment undecodable"};
  }
  commitment_ = commit;
  return std::nullopt;
}

std::optional<Detection> Consumer::receive_offer(const std::optional<SignedEnvelope>& offer,
                                                 const KeyRegistry& keys) {
  if (!offer) return Detection{FaultKind::kMissingMessage, elector_, "no offer"};
  if (!check_envelope(*offer, keys) || offer->signer != elector_) {
    return Detection{FaultKind::kBadSignature, elector_, "offer signature invalid"};
  }
  try {
    OfferPayload payload = OfferPayload::decode(offer->payload);
    if (payload.elector != elector_ || payload.consumer != id_ || payload.round != round_) {
      return Detection{FaultKind::kMalformedMessage, elector_, "offer fields do not match"};
    }
    if (payload.route) {
      // S-BGP style origin check: the offered route must carry the
      // producer's own signed announcement of a matching route.
      if (!payload.producer_announce || !check_envelope(*payload.producer_announce, keys)) {
        return Detection{FaultKind::kBadSignature, elector_,
                         "offered route lacks a valid producer signature"};
      }
      AnnouncePayload inner = AnnouncePayload::decode(payload.producer_announce->payload);
      if (!inner.route || !(*inner.route == *payload.route) ||
          inner.producer != payload.producer_announce->signer) {
        return Detection{FaultKind::kMalformedMessage, elector_,
                         "offered route does not match the producer's announcement"};
      }
    }
    offered_route_ = payload.route;
  } catch (const util::DecodeError&) {
    return Detection{FaultKind::kMalformedMessage, elector_, "offer undecodable"};
  }
  offer_ = offer;
  return std::nullopt;
}

std::vector<ClassId> Consumer::due_classes() const {
  if (!promise_ || !offer_) return {};
  return promise_->classes_better_than(classifier_.classify(offered_route_));
}

std::optional<Detection> Consumer::check_bit_proofs(
    const std::map<ClassId, SignedEnvelope>& proofs, const KeyRegistry& keys) {
  if (!commitment_) throw std::logic_error("Consumer: commitment missing");
  received_proofs_.clear();
  CommitPayload commit = CommitPayload::decode(commitment_->payload);

  for (ClassId cls : due_classes()) {
    auto it = proofs.find(cls);
    if (it == proofs.end()) {
      return Detection{FaultKind::kMissingBitProof, elector_,
                       "no proof for better class " + std::to_string(cls)};
    }
    const SignedEnvelope& env = it->second;
    received_proofs_.push_back(env);
    if (!check_envelope(env, keys) || env.signer != elector_) {
      return Detection{FaultKind::kBadSignature, elector_, "bit proof signature invalid"};
    }
    try {
      BitProofPayload payload = BitProofPayload::decode(env.payload);
      if (payload.elector != elector_ || payload.round != round_ || payload.proof.index != cls) {
        return Detection{FaultKind::kMalformedMessage, elector_, "bit proof fields do not match"};
      }
      if (!FlatCommitment::verify(commit.root, commit.num_bits, payload.proof)) {
        return Detection{FaultKind::kInvalidBitProof, elector_,
                         "proof does not open the commitment"};
      }
      if (payload.proof.bit) {
        return Detection{FaultKind::kBrokenPromise, elector_,
                         "class " + std::to_string(cls) +
                             " (better than my offer) had an available route"};
      }
    } catch (const util::DecodeError&) {
      return Detection{FaultKind::kMalformedMessage, elector_, "bit proof undecodable"};
    }
  }
  return std::nullopt;
}

ConsumerChallenge Consumer::make_challenge() const {
  if (!offer_ || !signed_promise_) throw std::logic_error("Consumer: nothing to challenge with");
  ConsumerChallenge challenge;
  challenge.offer = *offer_;
  challenge.signed_promise = *signed_promise_;
  challenge.received_proofs = received_proofs_;
  return challenge;
}

// ------------------------------------------------------------ challenges

Bytes ProducerChallenge::encode() const {
  util::ByteWriter w;
  w.bytes(announce.encode());
  w.bytes(ack.encode());
  w.u8(received_proof ? 1 : 0);
  if (received_proof) w.bytes(received_proof->encode());
  return w.take();
}

ProducerChallenge ProducerChallenge::decode(ByteSpan data) {
  util::ByteReader r(data);
  ProducerChallenge c;
  c.announce = SignedEnvelope::decode(r.bytes());
  c.ack = SignedEnvelope::decode(r.bytes());
  std::uint8_t flag = r.u8();
  if (flag > 1) throw util::DecodeError("ProducerChallenge: bad flag");
  if (flag == 1) c.received_proof = SignedEnvelope::decode(r.bytes());
  r.expect_end();
  return c;
}

Bytes ConsumerChallenge::encode() const {
  util::ByteWriter w;
  w.bytes(offer.encode());
  w.bytes(signed_promise.encode());
  w.u32(static_cast<std::uint32_t>(received_proofs.size()));
  for (const auto& proof : received_proofs) w.bytes(proof.encode());
  return w.take();
}

ConsumerChallenge ConsumerChallenge::decode(ByteSpan data) {
  util::ByteReader r(data);
  ConsumerChallenge c;
  c.offer = SignedEnvelope::decode(r.bytes());
  c.signed_promise = SignedEnvelope::decode(r.bytes());
  // Each proof envelope is a length prefix plus a 12-byte minimum envelope.
  std::uint32_t n = r.check_count(r.u32(), 16, "ConsumerChallenge proofs");
  c.received_proofs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) c.received_proofs.push_back(SignedEnvelope::decode(r.bytes()));
  r.expect_end();
  return c;
}

bool validate_inconsistent_commit(const SignedEnvelope& a, const SignedEnvelope& b,
                                  const KeyRegistry& keys) {
  if (!check_envelope(a, keys) || !check_envelope(b, keys)) return false;
  if (a.signer != b.signer) return false;
  try {
    CommitPayload pa = CommitPayload::decode(a.payload);
    CommitPayload pb = CommitPayload::decode(b.payload);
    return pa.elector == pb.elector && pa.round == pb.round &&
           !crypto::constant_time_equal(pa.root, pb.root);
  } catch (const util::DecodeError&) {
    return false;
  }
}

Verdict judge_producer_challenge(const ProducerChallenge& challenge,
                                 const SignedEnvelope& commitment,
                                 const std::optional<SignedEnvelope>& elector_response,
                                 const KeyRegistry& keys, const Classifier& classifier) {
  // 1. The challenge itself must be sound: a producer-signed announcement,
  //    matched by an elector-signed ACK, for a non-null route.
  if (!check_envelope(challenge.announce, keys) || !check_envelope(challenge.ack, keys)) {
    return Verdict::kChallengeRejected;
  }
  AnnouncePayload announce;
  AckPayload ack;
  CommitPayload commit;
  try {
    announce = AnnouncePayload::decode(challenge.announce.payload);
    ack = AckPayload::decode(challenge.ack.payload);
    commit = CommitPayload::decode(commitment.payload);
  } catch (const util::DecodeError&) {
    return Verdict::kChallengeRejected;
  }
  if (announce.producer != challenge.announce.signer || !announce.route) {
    return Verdict::kChallengeRejected;
  }
  if (challenge.ack.signer != announce.elector || ack.elector != announce.elector ||
      ack.round != announce.round ||
      !crypto::constant_time_equal(ack.announce_digest, challenge.announce.digest())) {
    return Verdict::kChallengeRejected;
  }
  if (!check_envelope(commitment, keys) || commitment.signer != announce.elector ||
      commit.round != announce.round) {
    return Verdict::kChallengeRejected;
  }

  // 2. The elector must now prove bit(class(r)) == 1.
  const ClassId cls = classifier.classify(announce.route);
  if (!elector_response) return Verdict::kElectorGuilty;  // refusal = admission
  if (!check_envelope(*elector_response, keys) ||
      elector_response->signer != announce.elector) {
    return Verdict::kElectorGuilty;
  }
  try {
    BitProofPayload payload = BitProofPayload::decode(elector_response->payload);
    if (payload.round != announce.round || payload.proof.index != cls) {
      return Verdict::kElectorGuilty;
    }
    if (!FlatCommitment::verify(commit.root, commit.num_bits, payload.proof)) {
      return Verdict::kElectorGuilty;
    }
    return payload.proof.bit ? Verdict::kChallengeRejected : Verdict::kElectorGuilty;
  } catch (const util::DecodeError&) {
    return Verdict::kElectorGuilty;
  }
}

Verdict judge_consumer_challenge(const ConsumerChallenge& challenge,
                                 const SignedEnvelope& commitment,
                                 const std::map<ClassId, SignedEnvelope>& elector_responses,
                                 const KeyRegistry& keys, const Classifier& classifier) {
  if (!check_envelope(challenge.offer, keys) || !check_envelope(challenge.signed_promise, keys)) {
    return Verdict::kChallengeRejected;
  }
  OfferPayload offer;
  PromisePayload promise;
  CommitPayload commit;
  try {
    offer = OfferPayload::decode(challenge.offer.payload);
    promise = PromisePayload::decode(challenge.signed_promise.payload);
    commit = CommitPayload::decode(commitment.payload);
  } catch (const util::DecodeError&) {
    return Verdict::kChallengeRejected;
  }
  if (challenge.offer.signer != offer.elector || challenge.signed_promise.signer != offer.elector ||
      promise.elector != offer.elector || promise.consumer != offer.consumer) {
    return Verdict::kChallengeRejected;
  }
  if (!check_envelope(commitment, keys) || commitment.signer != offer.elector ||
      commit.round != offer.round || commit.num_bits != classifier.num_classes()) {
    return Verdict::kChallengeRejected;
  }

  const ClassId offered_cls = classifier.classify(offer.route);
  for (ClassId cls : promise.promise.classes_better_than(offered_cls)) {
    auto it = elector_responses.find(cls);
    if (it == elector_responses.end()) return Verdict::kElectorGuilty;
    if (!check_envelope(it->second, keys) || it->second.signer != offer.elector) {
      return Verdict::kElectorGuilty;
    }
    try {
      BitProofPayload payload = BitProofPayload::decode(it->second.payload);
      if (payload.round != offer.round || payload.proof.index != cls) {
        return Verdict::kElectorGuilty;
      }
      if (!FlatCommitment::verify(commit.root, commit.num_bits, payload.proof)) {
        return Verdict::kElectorGuilty;
      }
      if (payload.proof.bit) return Verdict::kElectorGuilty;  // broken promise, now public
    } catch (const util::DecodeError&) {
      return Verdict::kElectorGuilty;
    }
  }
  return Verdict::kChallengeRejected;
}

std::optional<std::pair<SignedEnvelope, SignedEnvelope>> cross_check_commitments(
    const std::vector<SignedEnvelope>& commitments, const KeyRegistry& keys) {
  for (std::size_t i = 0; i < commitments.size(); ++i) {
    for (std::size_t j = i + 1; j < commitments.size(); ++j) {
      if (validate_inconsistent_commit(commitments[i], commitments[j], keys)) {
        return std::pair{commitments[i], commitments[j]};
      }
    }
  }
  return std::nullopt;
}

}  // namespace spider::core

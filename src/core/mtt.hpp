// The modified ternary tree (MTT) of paper §5: a ternary Merkle tree that
// runs one VPref instance per prefix under a single commitment, without
// revealing which prefixes are present.
//
// Node types (paper Figure 4):
//   * inner nodes  — three children along edges 0, 1 and E ("end of
//     prefix"); a child slot with no real subtree holds a dummy node;
//   * prefix nodes — one per prefix in the tree, reached via the E edge of
//     the inner node at depth len(prefix); its children are k bit nodes;
//   * bit nodes    — the VPref input bits b_1..b_k for that prefix,
//     labeled H(b || x) with secret randomness x;
//   * dummy nodes  — labeled with random bitstrings indistinguishable from
//     hashes, which is what hides the presence/absence of subtrees.
//
// All randomness (x values and dummy labels) is derived from one
// per-commitment seed (crypto::CommitmentPrf), so storing the 32-byte seed
// suffices to regenerate the entire labeling during replay (§6.5).
//
// PRF indexing is *content-addressed*: the x value of a bit node is derived
// from (prefix, class) and a dummy node's label from its trie position
// (path bits, depth, child slot) — never from allocation order.  The root
// is therefore a pure function of (seed, contents): a tree grown
// incrementally through any sequence of apply() calls labels identically
// to one built fresh from the same final table, which is what lets the
// proof generator reproduce commitment roots by checkpoint + replay
// regardless of how the live recorder's tree evolved (§6.5).
//
// Representation notes: nodes live in flat arena arrays with 32-bit
// indices (freed slots are recycled through free lists, so update churn
// never invalidates indices), bits in a packed bitmap, and only
// inner/prefix labels are materialized (bit-node and dummy labels are
// recomputed from the PRF on demand).  This keeps a full-table MTT (391k
// prefixes x 50 classes ≈ 22M nodes) around a hundred MB, in the same
// regime the paper reports (137.5 MB).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "bgp/prefix.hpp"
#include "core/commitment.hpp"
#include "core/promise.hpp"
#include "util/thread_pool.hpp"

namespace spider::core {

/// A batched bit proof for one prefix: opens the bits of `revealed` classes
/// and carries the sibling labels up to the root.  A verifier learns the
/// revealed bits and nothing else — every other value in the proof is
/// either a hash or (indistinguishably) a dummy node's random label.
struct MttPrefixProof {
  bgp::Prefix prefix;
  /// (class, bit, x) for each opened bit.
  struct Opened {
    ClassId cls = 0;
    bool bit = false;
    Digest20 x{};
    bool operator==(const Opened&) const = default;
  };
  std::vector<Opened> revealed;
  /// Labels of all k bit nodes under the prefix node (opened positions are
  /// recomputed by the verifier and compared).
  std::vector<Digest20> bit_labels;
  /// For each inner node on the path from the root (inclusive) down to the
  /// prefix node's parent: the labels of the two non-path children, in
  /// child-slot order (0, 1, E minus the path slot).
  std::vector<std::array<Digest20, 2>> siblings;

  std::size_t byte_size() const;
  util::Bytes encode() const;
  static MttPrefixProof decode(util::ByteSpan data);
};

// ------------------------------------------------------------------------
// Proof subpath iteration.
//
// The verifier-side fold over a MttPrefixProof, exposed one step at a
// time so session-layer verifiers (src/verify) can memoize interior
// subpaths: a (position, label) pair names one node of the trie and the
// label it must carry for the proof to reach a given root.  Mtt::verify
// folds through these same helpers, so a cached and an uncached
// verification can never disagree on any step.
//
// Levels are numbered like MttPrefixProof::siblings: fold level L (for L
// in [0, len]) combines the label of the path node *below* the inner node
// at depth L with the two carried sibling labels and yields the label of
// the inner node at depth L.  Position level L names the node whose label
// enters the fold at L: the inner node at depth L for L <= len, the
// prefix node itself for L == len + 1.  Position 0 is the root.

/// Inner-node label from its three child labels, in slot order (0, 1, E).
Digest20 mtt_combine_children(const Digest20& c0, const Digest20& c1, const Digest20& c2);

/// Prefix-node label over all k bit-node labels.
Digest20 mtt_prefix_label(const Digest20* bit_labels, std::size_t n);

/// The child slot a proof for `prefix` occupies at fold level `level`
/// (0..len): 0/1 along the trie bits, 2 (the E edge) at the prefix's own
/// depth.
int mtt_path_slot(const bgp::Prefix& prefix, std::size_t level);

/// Packed trie position (path bits | depth | node kind) of the node at
/// position level `level` in [0, len + 1] on the path to `prefix`.
/// Injective across the whole trie — equal positions always mean the same
/// node — which is what makes (position, label) pairs safe to share
/// across proofs without cross-subtree collisions.
std::uint64_t mtt_path_position(const bgp::Prefix& prefix, std::size_t level);

/// One verifier fold step at `level`: places `current` (the label at
/// position level `level` + 1) into the path slot and the two carried
/// sibling labels into the remaining slots, in slot order.
Digest20 mtt_fold_level(const bgp::Prefix& prefix, std::size_t level, const Digest20& current,
                        const std::array<Digest20, 2>& siblings);

/// Generator-side memo for prove(): the per-prefix proof material that
/// does not depend on the revealed class set — the bit randomness, the k
/// bit-node labels, and the sibling path (including the PRF-derived dummy
/// labels, which prove() otherwise re-derives on every call).  One
/// verification session proves the same prefix once per neighbor role;
/// with a memo only the first prove pays the PRF/digest work, the rest
/// assemble the proof from the stored material.
///
/// Valid only for one (tree structure, labeling, prf) combination: callers
/// discard the memo when the tree or seed changes (session engines keep
/// one per reconstruction).  Thread-safe — sessions generate proofs on a
/// worker pool.
class MttProofMemo {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;

 private:
  friend class Mtt;
  struct Entry {
    std::vector<Digest20> xs;
    std::vector<Digest20> bit_labels;
    std::vector<std::array<Digest20, 2>> siblings;
  };
  mutable std::mutex mutex_;
  std::map<bgp::Prefix, Entry> entries_;
  Stats stats_;
};

/// One element of an incremental update batch: insert-or-replace the
/// prefix's bits, or (bits == nullopt) remove the prefix.  Removing an
/// absent prefix and re-writing unchanged bits are no-ops, so callers can
/// feed their dirty set without first diffing against the tree.
struct MttUpdate {
  bgp::Prefix prefix;
  std::optional<std::vector<bool>> bits;
};

class Mtt {
 public:
  /// An empty, unusable tree; assign a built tree before use.
  Mtt() = default;

  /// PRF indices are packed into 64 bits (32 prefix bits + 6 length bits
  /// leave 26 bits for the class), so class counts are bounded.
  static constexpr std::uint32_t kMaxClasses = 1u << 26;

  /// PRF index of the x value behind (prefix, cls): content-addressed, so
  /// the same bit node draws the same randomness in any tree built over
  /// the same table with the same seed.
  static std::uint64_t bit_prf_index(const bgp::Prefix& prefix, ClassId cls);
  /// PRF index of the dummy label at child `slot` of the inner node
  /// identified by its trie position (path bits as in bgp::Prefix, depth).
  static std::uint64_t dummy_prf_index(std::uint32_t path_bits, std::uint8_t depth, int slot);

  /// Builds the minimal MTT over `entries` (prefix -> its k input bits).
  /// Entries are sorted internally; duplicate prefixes are rejected.
  static Mtt build(std::vector<std::pair<bgp::Prefix, std::vector<bool>>> entries,
                   std::uint32_t num_classes);

  std::uint32_t num_classes() const { return num_classes_; }

  struct Counts {
    std::size_t inner = 0;
    std::size_t prefix = 0;
    std::size_t dummy = 0;
    std::size_t bit = 0;
    std::size_t total() const { return inner + prefix + dummy + bit; }
  };
  Counts counts() const;

  /// Bytes used by the structure arrays, bitmap and materialized labels.
  std::size_t memory_bytes() const;

  /// Labels every node bottom-up; `threads` > 1 splits both the dominant
  /// prefix-label phase and the per-depth inner-label levels across a
  /// thread pool (paper §7.1: "we break the MTT into subtrees that are
  /// each labeled completely by one of the threads").  `multilane` runs
  /// prefix labeling through the multi-lane SHA-512 batcher
  /// (crypto/sha2_multi.hpp) — same labels, same hash accounting, several
  /// digests per compression call; pass false to force the scalar path
  /// (the differential battery compares the two).  Any previously computed
  /// labels are invalidated on entry, so a failed run can never serve a
  /// stale root.
  void compute_labels(const crypto::CommitmentPrf& prf, unsigned threads = 1,
                      bool multilane = true);

  /// Applies `updates` to the structure only: labels are invalidated and
  /// must be recomputed (compute_labels) before the next root_label() or
  /// prove().  Used when the commitment seed rotates — the structure
  /// survives, the labeling starts over.
  void apply(const std::vector<MttUpdate>& updates);

  /// Applies `updates` and relabels incrementally under `prf`, which MUST
  /// be the same PRF the current labels were computed with (the tree
  /// cannot verify this; mixing seeds silently corrupts the root).  Only
  /// touched prefix nodes and the inner nodes on their root paths rehash —
  /// O(churn · depth), not O(table).  Returns the number of hash
  /// evaluations performed (also available via last_label_hashes()).
  std::uint64_t apply(const std::vector<MttUpdate>& updates, const crypto::CommitmentPrf& prf,
                      unsigned threads = 1, bool multilane = true);

  bool labels_computed() const { return labels_done_; }
  const Digest20& root_label() const;

  /// The stored bit for (prefix, class); nullopt when the prefix is absent.
  std::optional<bool> bit(const bgp::Prefix& prefix, ClassId cls) const;

  /// Batched proof opening `classes` of `prefix`.  Requires labels to have
  /// been computed with the same `prf`.  Throws when the prefix is absent.
  /// A non-null `memo` (which must have been used only with this tree,
  /// labeling and prf) memoizes the class-independent proof material, so
  /// repeat proves of one prefix skip the PRF and digest work; the
  /// returned proof is bit-identical with and without the memo.
  MttPrefixProof prove(const crypto::CommitmentPrf& prf, const bgp::Prefix& prefix,
                       const std::vector<ClassId>& classes) const;
  MttPrefixProof prove(const crypto::CommitmentPrf& prf, const bgp::Prefix& prefix,
                       const std::vector<ClassId>& classes, MttProofMemo* memo) const;

  /// Verifies a proof against a root label.  Checks every revealed bit and
  /// the Merkle path; returns false on any mismatch.
  static bool verify(const Digest20& root, std::uint32_t num_classes,
                     const MttPrefixProof& proof);

  /// Total number of hash evaluations performed by the last labeling
  /// operation — a full compute_labels() or an incremental apply() (for
  /// the labeling microbenchmark and the churn-vs-table-size metric).
  std::uint64_t last_label_hashes() const { return label_hashes_; }

 private:
  enum class ChildKind : std::uint8_t { kNone = 0, kInner, kPrefix, kDummy };

  struct Inner {
    std::array<std::uint32_t, 3> child{};  // index into the kind's arena
    std::array<ChildKind, 3> kind{ChildKind::kNone, ChildKind::kNone, ChildKind::kNone};
  };

  /// Index of the prefix node for `prefix`, or nullopt.
  std::optional<std::uint32_t> find_prefix(const bgp::Prefix& prefix) const;

  std::uint32_t alloc_inner(std::uint8_t depth, std::uint32_t path_bits);
  void free_inner(std::uint32_t index);
  std::uint32_t alloc_prefix(const bgp::Prefix& prefix);
  void free_prefix(std::uint32_t index);
  void write_bits(std::uint32_t prefix_index, const std::vector<bool>& bits);
  bool bits_equal(std::uint32_t prefix_index, const std::vector<bool>& bits) const;

  /// Structural half of apply(): inserts/removes/overwrites one entry.
  /// Records the touched prefix in `touched` when the tree changed.
  void apply_structural(const MttUpdate& update, std::vector<bgp::Prefix>& touched);

  Digest20 child_label(std::uint32_t inner_index, int slot,
                       const crypto::CommitmentPrf& prf) const;
  /// Relabels one inner node from its children; returns hashes performed.
  std::uint64_t relabel_inner(std::uint32_t inner_index, const crypto::CommitmentPrf& prf);
  /// Labels the prefix nodes in ids[start, end), scalar or via the lane
  /// batcher; accumulates the hash count into `hashes`.
  void label_prefix_ids(const std::uint32_t* ids, std::size_t n, const crypto::CommitmentPrf& prf,
                        bool multilane, std::uint64_t& hashes);
  bool stored_bit(std::uint64_t bit_index) const;

  std::uint32_t num_classes_ = 0;
  std::vector<Inner> inner_;                 // arena; inner_[0] is the root
  std::vector<std::uint8_t> inner_depth_;    // trie depth of each inner node
  std::vector<std::uint32_t> inner_path_;    // path bits (left-aligned)
  std::vector<std::uint8_t> inner_alive_;
  std::vector<std::uint32_t> inner_free_;
  std::vector<bgp::Prefix> prefix_nodes_;    // arena, by prefix-node index
  std::vector<std::uint8_t> prefix_alive_;
  std::vector<std::uint32_t> prefix_free_;
  std::vector<std::uint64_t> bitmap_;        // packed bits, prefix-major
  std::uint64_t dummy_count_ = 0;
  std::vector<Digest20> inner_labels_;
  std::vector<Digest20> prefix_labels_;
  bool labels_done_ = false;
  std::uint64_t label_hashes_ = 0;
};

}  // namespace spider::core

// The modified ternary tree (MTT) of paper §5: a ternary Merkle tree that
// runs one VPref instance per prefix under a single commitment, without
// revealing which prefixes are present.
//
// Node types (paper Figure 4):
//   * inner nodes  — three children along edges 0, 1 and E ("end of
//     prefix"); a child slot with no real subtree holds a dummy node;
//   * prefix nodes — one per prefix in the tree, reached via the E edge of
//     the inner node at depth len(prefix); its children are k bit nodes;
//   * bit nodes    — the VPref input bits b_1..b_k for that prefix,
//     labeled H(b || x) with secret randomness x;
//   * dummy nodes  — labeled with random bitstrings indistinguishable from
//     hashes, which is what hides the presence/absence of subtrees.
//
// All randomness (x values and dummy labels) is derived from one
// per-commitment seed (crypto::CommitmentPrf), so storing the 32-byte seed
// suffices to regenerate the entire labeling during replay (§6.5).
//
// Representation notes: nodes live in flat arrays with 32-bit indices, bits
// in a packed bitmap, and only inner/prefix labels are materialized
// (bit-node and dummy labels are recomputed from the PRF on demand).  This
// keeps a full-table MTT (391k prefixes x 50 classes ≈ 22M nodes) around
// a hundred MB, in the same regime the paper reports (137.5 MB).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/prefix.hpp"
#include "core/commitment.hpp"
#include "core/promise.hpp"
#include "util/thread_pool.hpp"

namespace spider::core {

/// A batched bit proof for one prefix: opens the bits of `revealed` classes
/// and carries the sibling labels up to the root.  A verifier learns the
/// revealed bits and nothing else — every other value in the proof is
/// either a hash or (indistinguishably) a dummy node's random label.
struct MttPrefixProof {
  bgp::Prefix prefix;
  /// (class, bit, x) for each opened bit.
  struct Opened {
    ClassId cls = 0;
    bool bit = false;
    Digest20 x{};
    bool operator==(const Opened&) const = default;
  };
  std::vector<Opened> revealed;
  /// Labels of all k bit nodes under the prefix node (opened positions are
  /// recomputed by the verifier and compared).
  std::vector<Digest20> bit_labels;
  /// For each inner node on the path from the root (inclusive) down to the
  /// prefix node's parent: the labels of the two non-path children, in
  /// child-slot order (0, 1, E minus the path slot).
  std::vector<std::array<Digest20, 2>> siblings;

  std::size_t byte_size() const;
  util::Bytes encode() const;
  static MttPrefixProof decode(util::ByteSpan data);
};

class Mtt {
 public:
  /// An empty, unusable tree; assign a built tree before use.
  Mtt() = default;

  /// Builds the minimal MTT over `entries` (prefix -> its k input bits).
  /// Entries are sorted internally; duplicate prefixes are rejected.
  static Mtt build(std::vector<std::pair<bgp::Prefix, std::vector<bool>>> entries,
                   std::uint32_t num_classes);

  std::uint32_t num_classes() const { return num_classes_; }

  struct Counts {
    std::size_t inner = 0;
    std::size_t prefix = 0;
    std::size_t dummy = 0;
    std::size_t bit = 0;
    std::size_t total() const { return inner + prefix + dummy + bit; }
  };
  Counts counts() const;

  /// Bytes used by the structure arrays, bitmap and materialized labels.
  std::size_t memory_bytes() const;

  /// Labels every node bottom-up; `threads` > 1 splits the dominant
  /// prefix-label phase across a thread pool (paper §7.1: "we break the MTT
  /// into subtrees that are each labeled completely by one of the threads").
  /// `multilane` runs that phase through the multi-lane SHA-512 batcher
  /// (crypto/sha2_multi.hpp) — same labels, same hash accounting, several
  /// digests per compression call; pass false to force the scalar path
  /// (the differential battery compares the two).
  void compute_labels(const crypto::CommitmentPrf& prf, unsigned threads = 1,
                      bool multilane = true);

  bool labels_computed() const { return labels_done_; }
  const Digest20& root_label() const;

  /// The stored bit for (prefix, class); nullopt when the prefix is absent.
  std::optional<bool> bit(const bgp::Prefix& prefix, ClassId cls) const;

  /// Batched proof opening `classes` of `prefix`.  Requires labels to have
  /// been computed with the same `prf`.  Throws when the prefix is absent.
  MttPrefixProof prove(const crypto::CommitmentPrf& prf, const bgp::Prefix& prefix,
                       const std::vector<ClassId>& classes) const;

  /// Verifies a proof against a root label.  Checks every revealed bit and
  /// the Merkle path; returns false on any mismatch.
  static bool verify(const Digest20& root, std::uint32_t num_classes,
                     const MttPrefixProof& proof);

  /// Total number of hash evaluations performed by the last
  /// compute_labels() call (for the labeling microbenchmark).
  std::uint64_t last_label_hashes() const { return label_hashes_; }

 private:
  enum class ChildKind : std::uint8_t { kNone = 0, kInner, kPrefix, kDummy };

  struct Inner {
    std::array<std::uint32_t, 3> child{};  // index into the kind's array
    std::array<ChildKind, 3> kind{ChildKind::kNone, ChildKind::kNone, ChildKind::kNone};
  };

  /// Index of the prefix node for `prefix`, or nullopt.
  std::optional<std::uint32_t> find_prefix(const bgp::Prefix& prefix) const;

  Digest20 child_label(const Inner& node, int slot, const crypto::CommitmentPrf& prf) const;
  Digest20 prefix_label(std::uint32_t prefix_index, const crypto::CommitmentPrf& prf,
                        std::uint64_t& hashes) const;
  /// Labels prefix nodes [start, end) into prefix_labels_, scalar or via the
  /// lane batcher; accumulates the hash count into `hashes`.
  void label_prefix_range(std::uint32_t start, std::uint32_t end, const crypto::CommitmentPrf& prf,
                          bool multilane, std::uint64_t& hashes);
  bool stored_bit(std::uint64_t bit_index) const;

  std::uint32_t num_classes_ = 0;
  std::vector<Inner> inner_;                    // inner_[0] is the root
  std::vector<bgp::Prefix> prefix_nodes_;       // by prefix-node index
  std::vector<std::uint64_t> bitmap_;           // packed bits, prefix-major
  std::uint64_t dummy_count_ = 0;
  std::vector<Digest20> inner_labels_;
  std::vector<Digest20> prefix_labels_;
  bool labels_done_ = false;
  std::uint64_t label_hashes_ = 0;
};

}  // namespace spider::core

#include "core/mtt.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/sha2.hpp"
#include "crypto/sha2_multi.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace spider::core {

namespace {
constexpr int kSlot0 = 0, kSlot1 = 1, kSlotE = 2;

Digest20 combine3(const Digest20& a, const Digest20& b, const Digest20& c) {
  return crypto::digest20_concat({ByteSpan{a.data(), a.size()}, ByteSpan{b.data(), b.size()},
                                  ByteSpan{c.data(), c.size()}});
}
}  // namespace

// ----------------------------------------------------------------- build

Mtt Mtt::build(std::vector<std::pair<bgp::Prefix, std::vector<bool>>> entries,
               std::uint32_t num_classes) {
  if (num_classes == 0) throw std::invalid_argument("Mtt: num_classes must be > 0");
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].first == entries[i - 1].first) {
      throw std::invalid_argument("Mtt: duplicate prefix " + entries[i].first.str());
    }
  }

  Mtt tree;
  tree.num_classes_ = num_classes;
  tree.inner_.emplace_back();  // root
  tree.prefix_nodes_.reserve(entries.size());
  tree.bitmap_.assign((entries.size() * num_classes + 63) / 64, 0);

  for (const auto& [prefix, bits] : entries) {
    if (bits.size() != num_classes) {
      throw std::invalid_argument("Mtt: wrong bit count for " + prefix.str());
    }
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      int slot = prefix.bit(depth) ? kSlot1 : kSlot0;
      Inner& inner = tree.inner_[node];
      if (inner.kind[static_cast<std::size_t>(slot)] == ChildKind::kNone) {
        std::uint32_t fresh = static_cast<std::uint32_t>(tree.inner_.size());
        inner.kind[static_cast<std::size_t>(slot)] = ChildKind::kInner;
        inner.child[static_cast<std::size_t>(slot)] = fresh;
        tree.inner_.emplace_back();
        node = fresh;
      } else {
        node = inner.child[static_cast<std::size_t>(slot)];
      }
    }
    Inner& parent = tree.inner_[node];
    std::uint32_t prefix_index = static_cast<std::uint32_t>(tree.prefix_nodes_.size());
    parent.kind[kSlotE] = ChildKind::kPrefix;
    parent.child[kSlotE] = prefix_index;
    tree.prefix_nodes_.push_back(prefix);
    for (std::uint32_t c = 0; c < num_classes; ++c) {
      if (bits[c]) {
        std::uint64_t idx = static_cast<std::uint64_t>(prefix_index) * num_classes + c;
        tree.bitmap_[idx / 64] |= 1ULL << (idx % 64);
      }
    }
  }

  // Fill every unassigned child slot with a dummy node.
  for (Inner& inner : tree.inner_) {
    for (std::size_t slot = 0; slot < 3; ++slot) {
      if (inner.kind[slot] == ChildKind::kNone) {
        inner.kind[slot] = ChildKind::kDummy;
        inner.child[slot] = static_cast<std::uint32_t>(tree.dummy_count_++);
      }
    }
  }
  SPIDER_OBS_COUNT("core/mtt_builds", 1);
  SPIDER_OBS_COUNT("core/mtt_prefix_nodes", tree.prefix_nodes_.size());
  return tree;
}

Mtt::Counts Mtt::counts() const {
  Counts c;
  c.inner = inner_.size();
  c.prefix = prefix_nodes_.size();
  c.dummy = dummy_count_;
  c.bit = prefix_nodes_.size() * num_classes_;
  return c;
}

std::size_t Mtt::memory_bytes() const {
  return inner_.size() * sizeof(Inner) + prefix_nodes_.size() * sizeof(bgp::Prefix) +
         bitmap_.size() * sizeof(std::uint64_t) + inner_labels_.size() * sizeof(Digest20) +
         prefix_labels_.size() * sizeof(Digest20);
}

bool Mtt::stored_bit(std::uint64_t bit_index) const {
  return (bitmap_[bit_index / 64] >> (bit_index % 64)) & 1ULL;
}

std::optional<bool> Mtt::bit(const bgp::Prefix& prefix, ClassId cls) const {
  if (cls >= num_classes_) return std::nullopt;
  auto idx = find_prefix(prefix);
  if (!idx) return std::nullopt;
  return stored_bit(static_cast<std::uint64_t>(*idx) * num_classes_ + cls);
}

std::optional<std::uint32_t> Mtt::find_prefix(const bgp::Prefix& prefix) const {
  std::uint32_t node = 0;
  for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
    const Inner& inner = inner_[node];
    int slot = prefix.bit(depth) ? kSlot1 : kSlot0;
    if (inner.kind[static_cast<std::size_t>(slot)] != ChildKind::kInner) return std::nullopt;
    node = inner.child[static_cast<std::size_t>(slot)];
  }
  const Inner& parent = inner_[node];
  if (parent.kind[kSlotE] != ChildKind::kPrefix) return std::nullopt;
  return parent.child[kSlotE];
}

// -------------------------------------------------------------- labeling

Digest20 Mtt::prefix_label(std::uint32_t prefix_index, const crypto::CommitmentPrf& prf,
                           std::uint64_t& hashes) const {
  crypto::Sha512 h;
  for (std::uint32_t c = 0; c < num_classes_; ++c) {
    std::uint64_t idx = static_cast<std::uint64_t>(prefix_index) * num_classes_ + c;
    Digest20 leaf = bit_leaf_hash(stored_bit(idx), prf.bit_randomness(idx));
    hashes += 2;  // PRF derivation + leaf hash
    h.update(ByteSpan{leaf.data(), leaf.size()});
  }
  auto full = h.finish();
  hashes += 1;
  Digest20 out{};
  std::copy(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(out.size()), out.begin());
  return out;
}

void Mtt::label_prefix_range(std::uint32_t start, std::uint32_t end,
                             const crypto::CommitmentPrf& prf, bool multilane,
                             std::uint64_t& hashes) {
  if (!multilane) {
    for (std::uint32_t i = start; i < end; ++i) prefix_labels_[i] = prefix_label(i, prf, hashes);
    return;
  }
  // Batched: derive all x values for a chunk of prefix nodes, hash all
  // their leaves, then hash the per-node leaf concatenations — three
  // digest20_batch calls of uniform-length messages, so the SHA-512 lanes
  // stay full.  Labels and hash accounting are identical to the scalar
  // path (2 hashes per bit, 1 per prefix node).
  constexpr std::uint32_t kNodeChunk = 16;
  const std::uint32_t k = num_classes_;
  const std::size_t max_bits = static_cast<std::size_t>(kNodeChunk) * k;
  std::vector<std::uint64_t> indices(max_bits);
  std::vector<std::uint8_t> bits(max_bits);
  std::vector<Digest20> xs(max_bits);
  std::vector<Digest20> leaves(max_bits);
  ByteSpan spans[kNodeChunk];
  // A node's message is the contiguous bytes of its k leaf digests.
  static_assert(sizeof(Digest20) == 20, "Digest20 must pack to exactly 20 bytes");
  for (std::uint32_t base = start; base < end; base += kNodeChunk) {
    const std::uint32_t c = std::min(kNodeChunk, end - base);
    const std::size_t m = static_cast<std::size_t>(c) * k;
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t idx = static_cast<std::uint64_t>(base) * k + j;
      indices[j] = idx;
      bits[j] = stored_bit(idx) ? 1 : 0;
    }
    prf.bit_randomness_batch(indices.data(), m, xs.data());
    bit_leaf_hash_batch(bits.data(), xs.data(), m, leaves.data());
    for (std::uint32_t j = 0; j < c; ++j) {
      spans[j] = ByteSpan{leaves[static_cast<std::size_t>(j) * k].data(),
                          static_cast<std::size_t>(k) * sizeof(Digest20)};
    }
    crypto::digest20_batch(spans, c, prefix_labels_.data() + base);
    hashes += static_cast<std::uint64_t>(c) * (2 * k + 1);
  }
}

Digest20 Mtt::child_label(const Inner& node, int slot, const crypto::CommitmentPrf& prf) const {
  std::size_t s = static_cast<std::size_t>(slot);
  switch (node.kind[s]) {
    case ChildKind::kInner: return inner_labels_[node.child[s]];
    case ChildKind::kPrefix: return prefix_labels_[node.child[s]];
    case ChildKind::kDummy: return prf.dummy_label(node.child[s]);
    case ChildKind::kNone: break;
  }
  throw std::logic_error("Mtt: unassigned child slot");
}

void Mtt::compute_labels(const crypto::CommitmentPrf& prf, unsigned threads, bool multilane) {
  SPIDER_OBS_SPAN(label_span, "core/mtt_label");
  util::WallTimer label_timer;
  inner_labels_.assign(inner_.size(), Digest20{});
  prefix_labels_.assign(prefix_nodes_.size(), Digest20{});
  std::atomic<std::uint64_t> hash_count{0};

  // Phase 1 — prefix-node labels.  Each is independent (the "subtrees
  // labeled completely by one thread" of §7.1; a prefix node's subtree is
  // its k bit nodes), and this phase is ~95% of all hashing.
  const std::size_t n = prefix_nodes_.size();
  if (threads <= 1 || n < 256) {
    std::uint64_t hashes = 0;
    label_prefix_range(0, static_cast<std::uint32_t>(n), prf, multilane, hashes);
    hash_count += hashes;
  } else {
    util::ThreadPool pool(threads);
    const std::size_t chunks = static_cast<std::size_t>(threads) * 8;
    const std::size_t chunk_size = (n + chunks - 1) / chunks;
    std::size_t submitted = 0;
    for (std::size_t start = 0; start < n; start += chunk_size) {
      const std::size_t end = std::min(n, start + chunk_size);
      pool.submit([this, &prf, &hash_count, start, end, multilane] {
        std::uint64_t hashes = 0;
        label_prefix_range(static_cast<std::uint32_t>(start), static_cast<std::uint32_t>(end), prf,
                           multilane, hashes);
        hash_count += hashes;
      });
      ++submitted;
      SPIDER_OBS_GAUGE_MAX("core/threadpool_queue_depth", pool.queue_depth());
    }
    SPIDER_OBS_COUNT("core/mtt_parallel_chunks", submitted);
    pool.wait_idle();
  }

  // Phase 2 — inner labels bottom-up.  Children are always created after
  // their parent during the trie build, so decreasing index order is a
  // valid topological order.
  std::uint64_t hashes = 0;
  for (std::size_t i = inner_.size(); i-- > 0;) {
    const Inner& node = inner_[i];
    // Dummy child labels cost one PRF hash each.
    for (std::size_t s = 0; s < 3; ++s) {
      if (node.kind[s] == ChildKind::kDummy) ++hashes;
    }
    inner_labels_[i] = combine3(child_label(node, kSlot0, prf), child_label(node, kSlot1, prf),
                                child_label(node, kSlotE, prf));
    ++hashes;
  }
  hash_count += hashes;

  label_hashes_ = hash_count.load();
  labels_done_ = true;
  SPIDER_OBS_COUNT("core/mtt_label_runs", 1);
  SPIDER_OBS_COUNT("core/mtt_nodes_labeled", inner_.size() + prefix_nodes_.size());
  SPIDER_OBS_COUNT("core/mtt_label_hashes", label_hashes_);
  SPIDER_OBS_HIST("core/mtt_label_micros",
                  static_cast<std::uint64_t>(label_timer.seconds() * 1e6),
                  obs::latency_buckets_micros());
}

const Digest20& Mtt::root_label() const {
  if (!labels_done_) throw std::logic_error("Mtt: labels not computed");
  return inner_labels_[0];
}

// ----------------------------------------------------------------- proofs

MttPrefixProof Mtt::prove(const crypto::CommitmentPrf& prf, const bgp::Prefix& prefix,
                          const std::vector<ClassId>& classes) const {
  if (!labels_done_) throw std::logic_error("Mtt: labels not computed");
  auto prefix_index = find_prefix(prefix);
  if (!prefix_index) throw std::out_of_range("Mtt::prove: prefix not in tree " + prefix.str());

  MttPrefixProof proof;
  proof.prefix = prefix;

  for (ClassId cls : classes) {
    if (cls >= num_classes_) throw std::out_of_range("Mtt::prove: class out of range");
    std::uint64_t idx = static_cast<std::uint64_t>(*prefix_index) * num_classes_ + cls;
    proof.revealed.push_back({cls, stored_bit(idx), prf.bit_randomness(idx)});
  }

  proof.bit_labels.reserve(num_classes_);
  for (std::uint32_t c = 0; c < num_classes_; ++c) {
    std::uint64_t idx = static_cast<std::uint64_t>(*prefix_index) * num_classes_ + c;
    proof.bit_labels.push_back(bit_leaf_hash(stored_bit(idx), prf.bit_randomness(idx)));
  }

  // Path from the root to the prefix node's parent, recording the two
  // non-path child labels at each level.
  std::uint32_t node = 0;
  for (std::uint8_t depth = 0; depth <= prefix.length(); ++depth) {
    const Inner& inner = inner_[node];
    int path_slot = depth == prefix.length() ? kSlotE : (prefix.bit(depth) ? kSlot1 : kSlot0);
    std::array<Digest20, 2> sibs{};
    int out = 0;
    for (int slot = 0; slot < 3; ++slot) {
      if (slot == path_slot) continue;
      sibs[static_cast<std::size_t>(out++)] = child_label(inner, slot, prf);
    }
    proof.siblings.push_back(sibs);
    if (path_slot != kSlotE) node = inner.child[static_cast<std::size_t>(path_slot)];
  }
  SPIDER_OBS_COUNT("core/mtt_proofs_generated", 1);
  return proof;
}

bool Mtt::verify(const Digest20& root, std::uint32_t num_classes, const MttPrefixProof& proof) {
  SPIDER_OBS_COUNT("core/mtt_proofs_verified", 1);
  if (proof.bit_labels.size() != num_classes) return false;
  if (proof.siblings.size() != static_cast<std::size_t>(proof.prefix.length()) + 1) return false;

  // Revealed bits must hash to the claimed bit-node labels.
  for (const auto& opened : proof.revealed) {
    if (opened.cls >= num_classes) return false;
    if (bit_leaf_hash(opened.bit, opened.x) != proof.bit_labels[opened.cls]) return false;
  }

  // Prefix-node label from its bit-node labels.
  crypto::Sha512 h;
  for (const Digest20& leaf : proof.bit_labels) h.update(ByteSpan{leaf.data(), leaf.size()});
  auto full = h.finish();
  Digest20 current{};
  std::copy(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(current.size()),
            current.begin());

  // Fold upward: deepest path entry first.
  for (std::size_t level = proof.siblings.size(); level-- > 0;) {
    int path_slot = (level == proof.prefix.length()) ? kSlotE
                                                     : (proof.prefix.bit(static_cast<std::uint8_t>(level)) ? kSlot1 : kSlot0);
    const auto& sibs = proof.siblings[level];
    std::array<Digest20, 3> labels{};
    int out = 0;
    for (int slot = 0; slot < 3; ++slot) {
      if (slot == path_slot) {
        labels[static_cast<std::size_t>(slot)] = current;
      } else {
        labels[static_cast<std::size_t>(slot)] = sibs[static_cast<std::size_t>(out++)];
      }
    }
    current = combine3(labels[0], labels[1], labels[2]);
  }
  return crypto::constant_time_equal(current, root);
}

std::size_t MttPrefixProof::byte_size() const { return encode().size(); }

util::Bytes MttPrefixProof::encode() const {
  util::ByteWriter w;
  prefix.encode(w);
  w.u32(static_cast<std::uint32_t>(revealed.size()));
  for (const auto& opened : revealed) {
    w.u32(opened.cls);
    w.u8(opened.bit ? 1 : 0);
    w.digest(opened.x);
  }
  w.u32(static_cast<std::uint32_t>(bit_labels.size()));
  for (const auto& label : bit_labels) w.digest(label);
  w.u32(static_cast<std::uint32_t>(siblings.size()));
  for (const auto& pair : siblings) {
    w.digest(pair[0]);
    w.digest(pair[1]);
  }
  return w.take();
}

MttPrefixProof MttPrefixProof::decode(util::ByteSpan data) {
  util::ByteReader r(data);
  MttPrefixProof proof;
  proof.prefix = bgp::Prefix::decode(r);
  std::uint32_t n_revealed = r.check_count(r.u32(), 25, "MttPrefixProof revealed");
  proof.revealed.reserve(n_revealed);
  std::set<ClassId> seen_classes;
  for (std::uint32_t i = 0; i < n_revealed; ++i) {
    MttPrefixProof::Opened opened;
    opened.cls = r.u32();
    // A class opened twice is a non-canonical encoding: checkers look up
    // classes with find-first, so a second entry could carry a different
    // bit than the one actually verified against the commitment.
    if (!seen_classes.insert(opened.cls).second) {
      throw util::DecodeError("MttPrefixProof: duplicate revealed class");
    }
    std::uint8_t bit = r.u8();
    if (bit > 1) throw util::DecodeError("MttPrefixProof: bad bit");
    opened.bit = bit == 1;
    opened.x = r.digest();
    proof.revealed.push_back(opened);
  }
  std::uint32_t n_labels = r.check_count(r.u32(), 20, "MttPrefixProof bit labels");
  proof.bit_labels.reserve(n_labels);
  for (std::uint32_t i = 0; i < n_labels; ++i) proof.bit_labels.push_back(r.digest());
  std::uint32_t n_sibs = r.u32();
  if (n_sibs > 33) throw util::DecodeError("MttPrefixProof: path too long");
  r.check_count(n_sibs, 40, "MttPrefixProof siblings");
  proof.siblings.reserve(n_sibs);
  for (std::uint32_t i = 0; i < n_sibs; ++i) {
    std::array<Digest20, 2> pair{};
    pair[0] = r.digest();
    pair[1] = r.digest();
    proof.siblings.push_back(pair);
  }
  r.expect_end();
  return proof;
}

}  // namespace spider::core

#include "core/mtt.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/sha2.hpp"
#include "crypto/sha2_multi.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace spider::core {

namespace {
constexpr int kSlot0 = 0, kSlot1 = 1, kSlotE = 2;

/// Runs fn(start, end) over [0, n), either inline or sharded across `pool`
/// when the range is large enough to amortize the task overhead.  Barrier
/// semantics: returns only after every shard finished.  fn must not throw
/// from pooled shards (ThreadPool contract).
template <typename Fn>
void shard_range(util::ThreadPool* pool, std::size_t n, std::size_t min_parallel,
                 std::size_t chunks, Fn&& fn) {
  if (n == 0) return;
  if (pool == nullptr || n < min_parallel) {
    fn(static_cast<std::size_t>(0), n);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t start = 0; start < n; start += chunk_size) {
    const std::size_t end = std::min(n, start + chunk_size);
    pool->submit([&fn, start, end] { fn(start, end); });
    SPIDER_OBS_GAUGE_MAX("core/threadpool_queue_depth", pool->queue_depth());
  }
  pool->wait_idle();
}
}  // namespace

// -------------------------------------------------- proof subpath helpers

Digest20 mtt_combine_children(const Digest20& c0, const Digest20& c1, const Digest20& c2) {
  return crypto::digest20_concat({ByteSpan{c0.data(), c0.size()}, ByteSpan{c1.data(), c1.size()},
                                  ByteSpan{c2.data(), c2.size()}});
}

Digest20 mtt_prefix_label(const Digest20* bit_labels, std::size_t n) {
  crypto::Sha512 h;
  for (std::size_t i = 0; i < n; ++i) {
    h.update(ByteSpan{bit_labels[i].data(), bit_labels[i].size()});
  }
  auto full = h.finish();
  Digest20 out{};
  std::copy(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(out.size()), out.begin());
  return out;
}

int mtt_path_slot(const bgp::Prefix& prefix, std::size_t level) {
  if (level == prefix.length()) return kSlotE;
  return prefix.bit(static_cast<std::uint8_t>(level)) ? kSlot1 : kSlot0;
}

std::uint64_t mtt_path_position(const bgp::Prefix& prefix, std::size_t level) {
  // 32 path bits | 6 depth bits | 1 node-kind bit.  Inner positions carry
  // the path truncated to `level` bits (canonical: lower bits zero), the
  // prefix-node position the full canonical (bits, length) pair, so the
  // packing is injective across both node kinds.
  if (level > prefix.length()) {
    return (static_cast<std::uint64_t>(prefix.bits()) << 32) |
           (static_cast<std::uint64_t>(prefix.length()) << 1) | 1U;
  }
  const std::uint32_t bits =
      level == 0 ? 0U : (prefix.bits() >> (32 - level)) << (32 - level);
  return (static_cast<std::uint64_t>(bits) << 32) | (static_cast<std::uint64_t>(level) << 1);
}

Digest20 mtt_fold_level(const bgp::Prefix& prefix, std::size_t level, const Digest20& current,
                        const std::array<Digest20, 2>& siblings) {
  const int path_slot = mtt_path_slot(prefix, level);
  std::array<Digest20, 3> labels{};
  int out = 0;
  for (int slot = 0; slot < 3; ++slot) {
    if (slot == path_slot) {
      labels[static_cast<std::size_t>(slot)] = current;
    } else {
      labels[static_cast<std::size_t>(slot)] = siblings[static_cast<std::size_t>(out++)];
    }
  }
  return mtt_combine_children(labels[0], labels[1], labels[2]);
}

// ------------------------------------------------------------ PRF indices

std::uint64_t Mtt::bit_prf_index(const bgp::Prefix& prefix, ClassId cls) {
  // bgp::Prefix is canonical (bits beyond the length are zero), so the
  // (bits, length) pair identifies the prefix and the packing is injective
  // for cls < 2^26: 32 prefix bits | 6 length bits | 26 class bits.
  return (static_cast<std::uint64_t>(prefix.bits()) << 32) |
         (static_cast<std::uint64_t>(prefix.length()) << 26) | cls;
}

std::uint64_t Mtt::dummy_prf_index(std::uint32_t path_bits, std::uint8_t depth, int slot) {
  // 32 path bits | 6 depth bits | 2 slot bits; path bits below `depth` are
  // zero (trie paths are canonical like prefixes), so this too is injective.
  return (static_cast<std::uint64_t>(path_bits) << 32) |
         (static_cast<std::uint64_t>(depth) << 2) | static_cast<std::uint64_t>(slot);
}

// ------------------------------------------------------------------ arena

std::uint32_t Mtt::alloc_inner(std::uint8_t depth, std::uint32_t path_bits) {
  std::uint32_t index;
  if (!inner_free_.empty()) {
    index = inner_free_.back();
    inner_free_.pop_back();
    inner_[index] = Inner{};
  } else {
    index = static_cast<std::uint32_t>(inner_.size());
    inner_.emplace_back();
    inner_depth_.push_back(0);
    inner_path_.push_back(0);
    inner_alive_.push_back(0);
  }
  inner_depth_[index] = depth;
  inner_path_[index] = path_bits;
  inner_alive_[index] = 1;
  // A fresh inner node starts with three dummy children.
  for (std::size_t s = 0; s < 3; ++s) inner_[index].kind[s] = ChildKind::kDummy;
  dummy_count_ += 3;
  return index;
}

void Mtt::free_inner(std::uint32_t index) {
  inner_[index] = Inner{};
  inner_alive_[index] = 0;
  inner_free_.push_back(index);
}

std::uint32_t Mtt::alloc_prefix(const bgp::Prefix& prefix) {
  std::uint32_t index;
  if (!prefix_free_.empty()) {
    index = prefix_free_.back();
    prefix_free_.pop_back();
    prefix_nodes_[index] = prefix;
  } else {
    index = static_cast<std::uint32_t>(prefix_nodes_.size());
    prefix_nodes_.push_back(prefix);
    prefix_alive_.push_back(0);
    const std::size_t words =
        (prefix_nodes_.size() * static_cast<std::size_t>(num_classes_) + 63) / 64;
    if (bitmap_.size() < words) bitmap_.resize(words, 0);
  }
  prefix_alive_[index] = 1;
  return index;
}

void Mtt::free_prefix(std::uint32_t index) {
  prefix_alive_[index] = 0;
  prefix_free_.push_back(index);
}

void Mtt::write_bits(std::uint32_t prefix_index, const std::vector<bool>& bits) {
  const std::uint64_t base = static_cast<std::uint64_t>(prefix_index) * num_classes_;
  for (std::uint32_t c = 0; c < num_classes_; ++c) {
    const std::uint64_t idx = base + c;
    if (bits[c]) {
      bitmap_[idx / 64] |= 1ULL << (idx % 64);
    } else {
      bitmap_[idx / 64] &= ~(1ULL << (idx % 64));
    }
  }
}

bool Mtt::bits_equal(std::uint32_t prefix_index, const std::vector<bool>& bits) const {
  const std::uint64_t base = static_cast<std::uint64_t>(prefix_index) * num_classes_;
  for (std::uint32_t c = 0; c < num_classes_; ++c) {
    if (stored_bit(base + c) != bits[c]) return false;
  }
  return true;
}

// ----------------------------------------------------------------- build

Mtt Mtt::build(std::vector<std::pair<bgp::Prefix, std::vector<bool>>> entries,
               std::uint32_t num_classes) {
  if (num_classes == 0) throw std::invalid_argument("Mtt: num_classes must be > 0");
  if (num_classes > kMaxClasses) {
    throw std::invalid_argument("Mtt: num_classes exceeds the PRF index packing limit");
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].first == entries[i - 1].first) {
      throw std::invalid_argument("Mtt: duplicate prefix " + entries[i].first.str());
    }
  }

  Mtt tree;
  tree.num_classes_ = num_classes;
  tree.alloc_inner(0, 0);  // root at index 0
  tree.prefix_nodes_.reserve(entries.size());
  tree.bitmap_.assign((entries.size() * num_classes + 63) / 64, 0);

  for (auto& [prefix, bits] : entries) {
    if (bits.size() != num_classes) {
      throw std::invalid_argument("Mtt: wrong bit count for " + prefix.str());
    }
    MttUpdate update{prefix, std::move(bits)};
    std::vector<bgp::Prefix> touched;
    tree.apply_structural(update, touched);
  }
  SPIDER_OBS_COUNT("core/mtt_builds", 1);
  SPIDER_OBS_COUNT("core/mtt_prefix_nodes", tree.prefix_nodes_.size());
  return tree;
}

Mtt::Counts Mtt::counts() const {
  Counts c;
  c.inner = inner_.size() - inner_free_.size();
  c.prefix = prefix_nodes_.size() - prefix_free_.size();
  c.dummy = dummy_count_;
  c.bit = c.prefix * num_classes_;
  return c;
}

std::size_t Mtt::memory_bytes() const {
  return inner_.size() * sizeof(Inner) + inner_depth_.size() * sizeof(std::uint8_t) +
         inner_path_.size() * sizeof(std::uint32_t) + inner_alive_.size() * sizeof(std::uint8_t) +
         inner_free_.size() * sizeof(std::uint32_t) +
         prefix_nodes_.size() * sizeof(bgp::Prefix) +
         prefix_alive_.size() * sizeof(std::uint8_t) +
         prefix_free_.size() * sizeof(std::uint32_t) + bitmap_.size() * sizeof(std::uint64_t) +
         inner_labels_.size() * sizeof(Digest20) + prefix_labels_.size() * sizeof(Digest20);
}

bool Mtt::stored_bit(std::uint64_t bit_index) const {
  return (bitmap_[bit_index / 64] >> (bit_index % 64)) & 1ULL;
}

std::optional<bool> Mtt::bit(const bgp::Prefix& prefix, ClassId cls) const {
  if (cls >= num_classes_) return std::nullopt;
  auto idx = find_prefix(prefix);
  if (!idx) return std::nullopt;
  return stored_bit(static_cast<std::uint64_t>(*idx) * num_classes_ + cls);
}

std::optional<std::uint32_t> Mtt::find_prefix(const bgp::Prefix& prefix) const {
  std::uint32_t node = 0;
  for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
    const Inner& inner = inner_[node];
    int slot = prefix.bit(depth) ? kSlot1 : kSlot0;
    if (inner.kind[static_cast<std::size_t>(slot)] != ChildKind::kInner) return std::nullopt;
    node = inner.child[static_cast<std::size_t>(slot)];
  }
  const Inner& parent = inner_[node];
  if (parent.kind[kSlotE] != ChildKind::kPrefix) return std::nullopt;
  return parent.child[kSlotE];
}

// ---------------------------------------------------------------- updates

void Mtt::apply_structural(const MttUpdate& update, std::vector<bgp::Prefix>& touched) {
  const bgp::Prefix& prefix = update.prefix;
  if (update.bits) {
    if (update.bits->size() != num_classes_) {
      throw std::invalid_argument("Mtt: wrong bit count for " + prefix.str());
    }
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const bool bit = prefix.bit(depth);
      const std::size_t slot = bit ? kSlot1 : kSlot0;
      if (inner_[node].kind[slot] == ChildKind::kInner) {
        node = inner_[node].child[slot];
        continue;
      }
      const std::uint32_t path =
          inner_path_[node] | (bit ? (1u << (31 - depth)) : 0u);
      const std::uint32_t fresh = alloc_inner(static_cast<std::uint8_t>(depth + 1), path);
      // Re-index after alloc: the arena may have reallocated.
      inner_[node].kind[slot] = ChildKind::kInner;
      inner_[node].child[slot] = fresh;
      --dummy_count_;  // the slot's dummy is replaced by the new inner node
      node = fresh;
    }
    if (inner_[node].kind[kSlotE] == ChildKind::kPrefix) {
      const std::uint32_t pi = inner_[node].child[kSlotE];
      if (bits_equal(pi, *update.bits)) return;  // no-op rewrite
      write_bits(pi, *update.bits);
    } else {
      const std::uint32_t pi = alloc_prefix(prefix);
      inner_[node].kind[kSlotE] = ChildKind::kPrefix;
      inner_[node].child[kSlotE] = pi;
      --dummy_count_;
      write_bits(pi, *update.bits);
    }
    touched.push_back(prefix);
    return;
  }

  // Removal.  Record the root path so pruning can walk back up.
  std::array<std::uint32_t, 33> path_nodes{};
  std::uint32_t node = 0;
  for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
    path_nodes[depth] = node;
    const Inner& inner = inner_[node];
    const std::size_t slot = prefix.bit(depth) ? kSlot1 : kSlot0;
    if (inner.kind[slot] != ChildKind::kInner) return;  // absent: no-op
    node = inner.child[slot];
  }
  path_nodes[prefix.length()] = node;
  if (inner_[node].kind[kSlotE] != ChildKind::kPrefix) return;  // absent: no-op
  free_prefix(inner_[node].child[kSlotE]);
  inner_[node].kind[kSlotE] = ChildKind::kDummy;
  inner_[node].child[kSlotE] = 0;
  ++dummy_count_;

  // Prune upward: an inner node whose children are all dummies is
  // structurally identical to the single dummy a fresh build would place
  // there, and must collapse for incremental and rebuilt trees to agree.
  for (std::uint8_t depth = prefix.length(); depth > 0; --depth) {
    const std::uint32_t cur = path_nodes[depth];
    const Inner& n = inner_[cur];
    if (n.kind[0] != ChildKind::kDummy || n.kind[1] != ChildKind::kDummy ||
        n.kind[2] != ChildKind::kDummy) {
      break;
    }
    free_inner(cur);
    dummy_count_ -= 3;
    const std::uint32_t parent = path_nodes[depth - 1];
    const std::size_t slot = prefix.bit(static_cast<std::uint8_t>(depth - 1)) ? kSlot1 : kSlot0;
    inner_[parent].kind[slot] = ChildKind::kDummy;
    inner_[parent].child[slot] = 0;
    ++dummy_count_;
  }
  touched.push_back(prefix);
}

void Mtt::apply(const std::vector<MttUpdate>& updates) {
  labels_done_ = false;
  std::vector<bgp::Prefix> touched;
  for (const MttUpdate& update : updates) apply_structural(update, touched);
  SPIDER_OBS_COUNT("core/mtt_apply_runs", 1);
  SPIDER_OBS_COUNT("core/mtt_apply_updates", updates.size());
}

// -------------------------------------------------------------- labeling

void Mtt::label_prefix_ids(const std::uint32_t* ids, std::size_t n,
                           const crypto::CommitmentPrf& prf, bool multilane,
                           std::uint64_t& hashes) {
  const std::uint32_t k = num_classes_;
  if (!multilane) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t id = ids[i];
      const std::uint64_t base = static_cast<std::uint64_t>(id) * k;
      crypto::Sha512 h;
      for (std::uint32_t c = 0; c < k; ++c) {
        Digest20 leaf =
            bit_leaf_hash(stored_bit(base + c), prf.bit_randomness(bit_prf_index(prefix_nodes_[id], c)));
        hashes += 2;  // PRF derivation + leaf hash
        h.update(ByteSpan{leaf.data(), leaf.size()});
      }
      auto full = h.finish();
      hashes += 1;
      Digest20 out{};
      std::copy(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(out.size()),
                out.begin());
      prefix_labels_[id] = out;
    }
    return;
  }
  // Batched: derive all x values for a chunk of prefix nodes, hash all
  // their leaves, then hash the per-node leaf concatenations — three
  // digest20_batch calls of uniform-length messages, so the SHA-512 lanes
  // stay full.  Labels and hash accounting are identical to the scalar
  // path (2 hashes per bit, 1 per prefix node).
  constexpr std::size_t kNodeChunk = 16;
  const std::size_t max_bits = kNodeChunk * k;
  std::vector<std::uint64_t> indices(max_bits);
  std::vector<std::uint8_t> bits(max_bits);
  std::vector<Digest20> xs(max_bits);
  std::vector<Digest20> leaves(max_bits);
  Digest20 chunk_labels[kNodeChunk];
  ByteSpan spans[kNodeChunk];
  // A node's message is the contiguous bytes of its k leaf digests.
  static_assert(sizeof(Digest20) == 20, "Digest20 must pack to exactly 20 bytes");
  for (std::size_t base = 0; base < n; base += kNodeChunk) {
    const std::size_t c = std::min(kNodeChunk, n - base);
    const std::size_t m = c * k;
    for (std::size_t node = 0; node < c; ++node) {
      const std::uint32_t id = ids[base + node];
      const std::uint64_t storage = static_cast<std::uint64_t>(id) * k;
      for (std::uint32_t cls = 0; cls < k; ++cls) {
        const std::size_t j = node * k + cls;
        indices[j] = bit_prf_index(prefix_nodes_[id], cls);
        bits[j] = stored_bit(storage + cls) ? 1 : 0;
      }
    }
    prf.bit_randomness_batch(indices.data(), m, xs.data());
    bit_leaf_hash_batch(bits.data(), xs.data(), m, leaves.data());
    for (std::size_t j = 0; j < c; ++j) {
      spans[j] = ByteSpan{leaves[j * k].data(), static_cast<std::size_t>(k) * sizeof(Digest20)};
    }
    crypto::digest20_batch(spans, c, chunk_labels);
    for (std::size_t j = 0; j < c; ++j) prefix_labels_[ids[base + j]] = chunk_labels[j];
    hashes += static_cast<std::uint64_t>(c) * (2 * k + 1);
  }
}

Digest20 Mtt::child_label(std::uint32_t inner_index, int slot,
                          const crypto::CommitmentPrf& prf) const {
  const Inner& node = inner_[inner_index];
  std::size_t s = static_cast<std::size_t>(slot);
  switch (node.kind[s]) {
    case ChildKind::kInner: return inner_labels_[node.child[s]];
    case ChildKind::kPrefix: return prefix_labels_[node.child[s]];
    case ChildKind::kDummy:
      return prf.dummy_label(dummy_prf_index(inner_path_[inner_index],
                                             inner_depth_[inner_index], slot));
    case ChildKind::kNone: break;
  }
  throw std::logic_error("Mtt: unassigned child slot");
}

std::uint64_t Mtt::relabel_inner(std::uint32_t inner_index, const crypto::CommitmentPrf& prf) {
  const Inner& node = inner_[inner_index];
  std::uint64_t hashes = 1;  // the combining hash
  for (std::size_t s = 0; s < 3; ++s) {
    if (node.kind[s] == ChildKind::kDummy) ++hashes;  // PRF derivation per dummy child
  }
  inner_labels_[inner_index] = mtt_combine_children(child_label(inner_index, kSlot0, prf),
                                                    child_label(inner_index, kSlot1, prf),
                                                    child_label(inner_index, kSlotE, prf));
  return hashes;
}

void Mtt::compute_labels(const crypto::CommitmentPrf& prf, unsigned threads, bool multilane) {
  SPIDER_OBS_SPAN(label_span, "core/mtt_label");
  util::WallTimer label_timer;
  // Invalidate first: a throw mid-labeling must never leave the previous
  // root servable.
  labels_done_ = false;
  inner_labels_.assign(inner_.size(), Digest20{});
  prefix_labels_.assign(prefix_nodes_.size(), Digest20{});
  std::atomic<std::uint64_t> hash_count{0};

  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  util::ThreadPool* pool_ptr = pool ? &*pool : nullptr;
  const std::size_t chunks = static_cast<std::size_t>(threads) * 8;

  // Phase 1 — prefix-node labels.  Each is independent (the "subtrees
  // labeled completely by one thread" of §7.1; a prefix node's subtree is
  // its k bit nodes), and this phase is ~95% of all hashing.
  std::vector<std::uint32_t> prefix_ids;
  prefix_ids.reserve(prefix_nodes_.size());
  for (std::uint32_t i = 0; i < prefix_nodes_.size(); ++i) {
    if (prefix_alive_[i]) prefix_ids.push_back(i);
  }
  std::atomic<std::size_t> submitted{0};
  shard_range(pool_ptr, prefix_ids.size(), 256, chunks,
              [&](std::size_t start, std::size_t end) {
                std::uint64_t hashes = 0;
                label_prefix_ids(prefix_ids.data() + start, end - start, prf, multilane, hashes);
                hash_count += hashes;
                submitted += 1;
              });
  SPIDER_OBS_COUNT("core/mtt_parallel_chunks", submitted.load());

  // Phase 2 — inner labels bottom-up, grouped by trie depth.  A node's
  // children are strictly deeper, so each level depends only on deeper
  // levels; within a level every node is independent, which is what lets
  // this formerly serial pass shard across the pool (and tolerate the
  // arbitrary index order left behind by free-list recycling).
  std::array<std::vector<std::uint32_t>, 33> levels;
  for (std::uint32_t i = 0; i < inner_.size(); ++i) {
    if (inner_alive_[i]) levels[inner_depth_[i]].push_back(i);
  }
  for (std::size_t depth = levels.size(); depth-- > 0;) {
    const std::vector<std::uint32_t>& ids = levels[depth];
    shard_range(pool_ptr, ids.size(), 1024, chunks, [&](std::size_t start, std::size_t end) {
      std::uint64_t hashes = 0;
      for (std::size_t j = start; j < end; ++j) hashes += relabel_inner(ids[j], prf);
      hash_count += hashes;
    });
  }

  label_hashes_ = hash_count.load();
  labels_done_ = true;
  SPIDER_OBS_COUNT("core/mtt_label_runs", 1);
  SPIDER_OBS_COUNT("core/mtt_nodes_labeled", prefix_ids.size() + inner_.size() - inner_free_.size());
  SPIDER_OBS_COUNT("core/mtt_label_hashes", label_hashes_);
  SPIDER_OBS_HIST("core/mtt_label_micros",
                  static_cast<std::uint64_t>(label_timer.seconds() * 1e6),
                  obs::latency_buckets_micros());
}

std::uint64_t Mtt::apply(const std::vector<MttUpdate>& updates, const crypto::CommitmentPrf& prf,
                         unsigned threads, bool multilane) {
  if (!labels_done_) {
    throw std::logic_error("Mtt::apply: labels not computed; run compute_labels first");
  }
  SPIDER_OBS_SPAN(apply_span, "core/mtt_apply");
  util::WallTimer apply_timer;
  // Invalidate across the structural+relabel window: a throw part-way
  // through must never leave the previous root servable.
  labels_done_ = false;

  std::vector<bgp::Prefix> touched;
  for (const MttUpdate& update : updates) apply_structural(update, touched);

  // The arena may have grown; labels of surviving nodes stay valid in place.
  if (inner_labels_.size() < inner_.size()) inner_labels_.resize(inner_.size());
  if (prefix_labels_.size() < prefix_nodes_.size()) prefix_labels_.resize(prefix_nodes_.size());

  // Dirty closure, computed against the *final* structure: every touched
  // prefix dirties the inner nodes on its root path (for a removed prefix
  // the walk stops where the path was pruned — the stopping node is
  // exactly the one that gained a dummy child) plus its prefix node when
  // it still exists with changed bits.
  std::vector<std::uint32_t> dirty_prefix;
  std::vector<std::uint32_t> dirty_inner;
  for (const bgp::Prefix& prefix : touched) {
    std::uint32_t node = 0;
    bool on_tree = true;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      dirty_inner.push_back(node);
      const Inner& inner = inner_[node];
      const std::size_t slot = prefix.bit(depth) ? kSlot1 : kSlot0;
      if (inner.kind[slot] != ChildKind::kInner) {
        on_tree = false;
        break;
      }
      node = inner.child[slot];
    }
    if (!on_tree) continue;
    dirty_inner.push_back(node);
    if (inner_[node].kind[kSlotE] == ChildKind::kPrefix) {
      dirty_prefix.push_back(inner_[node].child[kSlotE]);
    }
  }
  std::sort(dirty_prefix.begin(), dirty_prefix.end());
  dirty_prefix.erase(std::unique(dirty_prefix.begin(), dirty_prefix.end()), dirty_prefix.end());
  std::sort(dirty_inner.begin(), dirty_inner.end());
  dirty_inner.erase(std::unique(dirty_inner.begin(), dirty_inner.end()), dirty_inner.end());

  std::atomic<std::uint64_t> hash_count{0};
  std::optional<util::ThreadPool> pool;
  if (threads > 1 && (dirty_prefix.size() >= 256 || dirty_inner.size() >= 1024)) {
    pool.emplace(threads);
  }
  util::ThreadPool* pool_ptr = pool ? &*pool : nullptr;
  const std::size_t chunks = static_cast<std::size_t>(threads) * 8;

  shard_range(pool_ptr, dirty_prefix.size(), 256, chunks,
              [&](std::size_t start, std::size_t end) {
                std::uint64_t hashes = 0;
                label_prefix_ids(dirty_prefix.data() + start, end - start, prf, multilane, hashes);
                hash_count += hashes;
              });

  // Dirty inner nodes bottom-up by depth, sharded within each level.
  std::array<std::vector<std::uint32_t>, 33> levels;
  for (std::uint32_t id : dirty_inner) levels[inner_depth_[id]].push_back(id);
  for (std::size_t depth = levels.size(); depth-- > 0;) {
    const std::vector<std::uint32_t>& ids = levels[depth];
    shard_range(pool_ptr, ids.size(), 1024, chunks, [&](std::size_t start, std::size_t end) {
      std::uint64_t hashes = 0;
      for (std::size_t j = start; j < end; ++j) hashes += relabel_inner(ids[j], prf);
      hash_count += hashes;
    });
  }

  label_hashes_ = hash_count.load();
  labels_done_ = true;
  SPIDER_OBS_COUNT("core/mtt_apply_runs", 1);
  SPIDER_OBS_COUNT("core/mtt_apply_updates", updates.size());
  SPIDER_OBS_COUNT("core/mtt_apply_dirty_nodes", dirty_prefix.size() + dirty_inner.size());
  SPIDER_OBS_COUNT("core/mtt_apply_hashes", label_hashes_);
  SPIDER_OBS_HIST("core/mtt_apply_micros",
                  static_cast<std::uint64_t>(apply_timer.seconds() * 1e6),
                  obs::latency_buckets_micros());
  return label_hashes_;
}

const Digest20& Mtt::root_label() const {
  if (!labels_done_) throw std::logic_error("Mtt: labels not computed");
  return inner_labels_[0];
}

// ----------------------------------------------------------------- proofs

MttProofMemo::Stats MttProofMemo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

MttPrefixProof Mtt::prove(const crypto::CommitmentPrf& prf, const bgp::Prefix& prefix,
                          const std::vector<ClassId>& classes) const {
  return prove(prf, prefix, classes, nullptr);
}

MttPrefixProof Mtt::prove(const crypto::CommitmentPrf& prf, const bgp::Prefix& prefix,
                          const std::vector<ClassId>& classes, MttProofMemo* memo) const {
  if (!labels_done_) throw std::logic_error("Mtt: labels not computed");
  auto prefix_index = find_prefix(prefix);
  if (!prefix_index) throw std::out_of_range("Mtt::prove: prefix not in tree " + prefix.str());
  const std::uint64_t storage_base = static_cast<std::uint64_t>(*prefix_index) * num_classes_;

  // The class-independent proof material: memo hit skips all PRF and
  // digest work; the revealed openings below read the stored bits either
  // way (they are the claim, and cost no hashing).
  MttProofMemo::Entry material;
  bool have_material = false;
  if (memo != nullptr) {
    std::lock_guard<std::mutex> lock(memo->mutex_);
    auto it = memo->entries_.find(prefix);
    if (it != memo->entries_.end()) {
      material = it->second;
      have_material = true;
      ++memo->stats_.hits;
    } else {
      ++memo->stats_.misses;
    }
  }
  if (!have_material) {
    // Derive the x value of each bit node exactly once (batched through
    // the SHA-512 lanes) and reuse it for both the openings and the bit
    // labels.
    std::vector<std::uint64_t> prf_indices(num_classes_);
    for (std::uint32_t c = 0; c < num_classes_; ++c) prf_indices[c] = bit_prf_index(prefix, c);
    material.xs.resize(num_classes_);
    prf.bit_randomness_batch(prf_indices.data(), prf_indices.size(), material.xs.data());

    material.bit_labels.reserve(num_classes_);
    for (std::uint32_t c = 0; c < num_classes_; ++c) {
      material.bit_labels.push_back(bit_leaf_hash(stored_bit(storage_base + c), material.xs[c]));
    }

    // Path from the root to the prefix node's parent, recording the two
    // non-path child labels at each level.
    std::uint32_t node = 0;
    for (std::uint8_t depth = 0; depth <= prefix.length(); ++depth) {
      const Inner& inner = inner_[node];
      int path_slot = mtt_path_slot(prefix, depth);
      std::array<Digest20, 2> sibs{};
      int out = 0;
      for (int slot = 0; slot < 3; ++slot) {
        if (slot == path_slot) continue;
        sibs[static_cast<std::size_t>(out++)] = child_label(node, slot, prf);
      }
      material.siblings.push_back(sibs);
      if (path_slot != kSlotE) node = inner.child[static_cast<std::size_t>(path_slot)];
    }
    if (memo != nullptr) {
      std::lock_guard<std::mutex> lock(memo->mutex_);
      memo->entries_.emplace(prefix, material);
    }
  }

  MttPrefixProof proof;
  proof.prefix = prefix;
  for (ClassId cls : classes) {
    if (cls >= num_classes_) throw std::out_of_range("Mtt::prove: class out of range");
    proof.revealed.push_back({cls, stored_bit(storage_base + cls), material.xs[cls]});
  }
  proof.bit_labels = std::move(material.bit_labels);
  proof.siblings = std::move(material.siblings);
  SPIDER_OBS_COUNT("core/mtt_proofs_generated", 1);
  return proof;
}

bool Mtt::verify(const Digest20& root, std::uint32_t num_classes, const MttPrefixProof& proof) {
  SPIDER_OBS_COUNT("core/mtt_proofs_verified", 1);
  if (proof.bit_labels.size() != num_classes) return false;
  if (proof.siblings.size() != static_cast<std::size_t>(proof.prefix.length()) + 1) return false;

  // Revealed bits must hash to the claimed bit-node labels.
  for (const auto& opened : proof.revealed) {
    if (opened.cls >= num_classes) return false;
    if (bit_leaf_hash(opened.bit, opened.x) != proof.bit_labels[opened.cls]) return false;
  }

  // Prefix-node label from its bit-node labels, then fold upward through
  // the shared subpath helpers (deepest path entry first).
  Digest20 current = mtt_prefix_label(proof.bit_labels.data(), proof.bit_labels.size());
  for (std::size_t level = proof.siblings.size(); level-- > 0;) {
    current = mtt_fold_level(proof.prefix, level, current, proof.siblings[level]);
  }
  return crypto::constant_time_equal(current, root);
}

std::size_t MttPrefixProof::byte_size() const { return encode().size(); }

util::Bytes MttPrefixProof::encode() const {
  util::ByteWriter w;
  prefix.encode(w);
  w.u32(static_cast<std::uint32_t>(revealed.size()));
  for (const auto& opened : revealed) {
    w.u32(opened.cls);
    w.u8(opened.bit ? 1 : 0);
    w.digest(opened.x);
  }
  w.u32(static_cast<std::uint32_t>(bit_labels.size()));
  for (const auto& label : bit_labels) w.digest(label);
  w.u32(static_cast<std::uint32_t>(siblings.size()));
  for (const auto& pair : siblings) {
    w.digest(pair[0]);
    w.digest(pair[1]);
  }
  return w.take();
}

MttPrefixProof MttPrefixProof::decode(util::ByteSpan data) {
  util::ByteReader r(data);
  MttPrefixProof proof;
  proof.prefix = bgp::Prefix::decode(r);
  std::uint32_t n_revealed = r.check_count(r.u32(), 25, "MttPrefixProof revealed");
  proof.revealed.reserve(n_revealed);
  std::set<ClassId> seen_classes;
  for (std::uint32_t i = 0; i < n_revealed; ++i) {
    MttPrefixProof::Opened opened;
    opened.cls = r.u32();
    // A class opened twice is a non-canonical encoding: checkers look up
    // classes with find-first, so a second entry could carry a different
    // bit than the one actually verified against the commitment.
    if (!seen_classes.insert(opened.cls).second) {
      throw util::DecodeError("MttPrefixProof: duplicate revealed class");
    }
    std::uint8_t bit = r.u8();
    if (bit > 1) throw util::DecodeError("MttPrefixProof: bad bit");
    opened.bit = bit == 1;
    opened.x = r.digest();
    proof.revealed.push_back(opened);
  }
  std::uint32_t n_labels = r.check_count(r.u32(), 20, "MttPrefixProof bit labels");
  proof.bit_labels.reserve(n_labels);
  for (std::uint32_t i = 0; i < n_labels; ++i) proof.bit_labels.push_back(r.digest());
  std::uint32_t n_sibs = r.u32();
  if (n_sibs > 33) throw util::DecodeError("MttPrefixProof: path too long");
  r.check_count(n_sibs, 40, "MttPrefixProof siblings");
  proof.siblings.reserve(n_sibs);
  for (std::uint32_t i = 0; i < n_sibs; ++i) {
    std::array<Digest20, 2> pair{};
    pair[0] = r.digest();
    pair[1] = r.digest();
    proof.siblings.push_back(pair);
  }
  r.expect_end();
  return proof;
}

}  // namespace spider::core

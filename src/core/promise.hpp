// The promise model of paper §3.1 (Definition 1): routes are partitioned
// into k indifference classes R_1..R_k known to all parties; a promise to a
// consumer is a strict partial order over those classes.  The null route ⊥
// is a member of the partition too (possibly in a class of its own), which
// is how "never export" promises are expressed: a class ranked below ⊥'s
// class must never be the exported route.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/route.hpp"
#include "util/serde.hpp"

namespace spider::core {

/// Index of an indifference class, 0-based (R_0..R_{k-1}).
using ClassId = std::uint32_t;

/// A strict partial order over k indifference classes.  Preferences are
/// added as (better, worse) pairs; the transitive closure is maintained
/// incrementally and cycles are rejected (a cyclic "preference" is not an
/// order and would make every execution a violation, cf. Theorem 5).
class Promise {
 public:
  /// An empty promise over `num_classes` classes (no preferences at all —
  /// everything mutually indifferent).
  explicit Promise(std::uint32_t num_classes);

  /// Declares routes in class `better` strictly preferred over routes in
  /// class `worse`, and closes transitively.  Throws std::invalid_argument
  /// on out-of-range ids, better == worse, or if this would create a cycle.
  void add_preference(ClassId better, ClassId worse);

  /// True when `a` is strictly preferred over `b`.
  bool prefers(ClassId a, ClassId b) const;

  /// True when the promise states no order between `a` and `b`.
  bool indifferent(ClassId a, ClassId b) const {
    return a == b || (!prefers(a, b) && !prefers(b, a));
  }

  /// Classes strictly preferred over `c` — exactly the bits a consumer whose
  /// offer landed in class `c` demands to see proven 0 (paper §4.5).
  std::vector<ClassId> classes_better_than(ClassId c) const;

  std::uint32_t num_classes() const { return num_classes_; }

  /// Number of declared (transitively closed) preference pairs.
  std::size_t preference_count() const;

  /// Detects the Theorem 5 situation against another consumer's promise:
  /// returns a class pair (i, j) with i <_this j and j <_other i, if any.
  std::optional<std::pair<ClassId, ClassId>> conflict_with(const Promise& other) const;

  /// Canonical encoding — the basis of the signed representation every
  /// consumer holds (Assumption 6).
  util::Bytes encode() const;
  static Promise decode(util::ByteSpan data);

  bool operator==(const Promise& other) const = default;

  /// Total order over k classes with class 0 the most preferred (the shape
  /// of "I always pick the shortest route": class = path length tier).
  static Promise total_order(std::uint32_t num_classes);

  /// The two-class prefer-customer promise of §3.2: class 0 = customer
  /// routes (preferred), class 1 = everything else.
  static Promise prefer_customer();

 private:
  std::uint32_t num_classes_;
  /// prefers_[a * num_classes_ + b] == true  <=>  a strictly preferred to b.
  std::vector<bool> prefers_;
};

/// Maps concrete routes (and ⊥ = nullopt) onto indifference classes.  The
/// mapping must be known to every participant (paper §4.1: "k indifference
/// classes R_1..R_k, which are known to all ASes").
class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual ClassId classify(const std::optional<bgp::Route>& route) const = 0;
  virtual std::uint32_t num_classes() const = 0;
};

/// Path-length classifier: class i = "routes with AS-path length i+1",
/// capped at num_classes-2; the last class is reserved for ⊥.  Matches the
/// evaluation setup ("defined 50 indifference classes based on the number
/// of hops, and promised to choose the shortest route", §7.2).
class PathLengthClassifier final : public Classifier {
 public:
  explicit PathLengthClassifier(std::uint32_t num_classes);
  ClassId classify(const std::optional<bgp::Route>& route) const override;
  std::uint32_t num_classes() const override { return num_classes_; }
  ClassId null_class() const { return num_classes_ - 1; }

  /// The matching promise: shorter is better, any real route beats ⊥.
  Promise shortest_path_promise() const;

 private:
  std::uint32_t num_classes_;
};

/// Relationship classifier for Gao-Rexford promises: class 0 = customer
/// routes, 1 = peer, 2 = provider, 3 = ⊥ (never preferred over a route).
/// Classification is by the local_pref tier the import policy assigned.
class RelationshipClassifier final : public Classifier {
 public:
  ClassId classify(const std::optional<bgp::Route>& route) const override;
  std::uint32_t num_classes() const override { return 4; }
  static constexpr ClassId kCustomer = 0, kPeer = 1, kProvider = 2, kNull = 3;

  /// Prefer-customer-then-peer-then-provider; every route beats ⊥.
  static Promise gao_rexford_promise();
};

/// Selective-export classifier (§3.2): class 0 = exportable routes,
/// class 1 = ⊥, class 2 = routes tagged "do not export" (via community).
/// The promise 0 > 1 > 2 states tagged routes must NEVER be exported:
/// they rank below the null route.
class SelectiveExportClassifier final : public Classifier {
 public:
  explicit SelectiveExportClassifier(bgp::Community no_export_tag)
      : tag_(no_export_tag) {}
  ClassId classify(const std::optional<bgp::Route>& route) const override;
  std::uint32_t num_classes() const override { return 3; }
  static constexpr ClassId kExportable = 0, kNull = 1, kNoExport = 2;

  static Promise no_export_promise();

 private:
  bgp::Community tag_;
};

}  // namespace spider::core

#include "core/promise.hpp"

#include <stdexcept>

#include "bgp/policy.hpp"

namespace spider::core {

Promise::Promise(std::uint32_t num_classes) : num_classes_(num_classes) {
  if (num_classes == 0) throw std::invalid_argument("Promise: need at least one class");
  prefers_.assign(static_cast<std::size_t>(num_classes) * num_classes, false);
}

void Promise::add_preference(ClassId better, ClassId worse) {
  if (better >= num_classes_ || worse >= num_classes_) {
    throw std::invalid_argument("Promise: class id out of range");
  }
  if (better == worse) throw std::invalid_argument("Promise: class cannot beat itself");
  if (prefers(worse, better)) throw std::invalid_argument("Promise: preference cycle");
  if (prefers(better, worse)) return;  // already known

  // Transitive closure: everything >= better now beats everything <= worse.
  std::vector<ClassId> ups{better}, downs{worse};
  for (ClassId c = 0; c < num_classes_; ++c) {
    if (prefers(c, better)) ups.push_back(c);
    if (prefers(worse, c)) downs.push_back(c);
  }
  for (ClassId u : ups) {
    for (ClassId d : downs) {
      if (u == d) throw std::invalid_argument("Promise: preference cycle");
      prefers_[static_cast<std::size_t>(u) * num_classes_ + d] = true;
    }
  }
}

bool Promise::prefers(ClassId a, ClassId b) const {
  if (a >= num_classes_ || b >= num_classes_) return false;
  return prefers_[static_cast<std::size_t>(a) * num_classes_ + b];
}

std::vector<ClassId> Promise::classes_better_than(ClassId c) const {
  std::vector<ClassId> out;
  for (ClassId x = 0; x < num_classes_; ++x) {
    if (prefers(x, c)) out.push_back(x);
  }
  return out;
}

std::size_t Promise::preference_count() const {
  std::size_t n = 0;
  for (bool b : prefers_) n += b ? 1 : 0;
  return n;
}

std::optional<std::pair<ClassId, ClassId>> Promise::conflict_with(const Promise& other) const {
  if (other.num_classes_ != num_classes_) {
    throw std::invalid_argument("Promise: comparing promises over different partitions");
  }
  for (ClassId i = 0; i < num_classes_; ++i) {
    for (ClassId j = 0; j < num_classes_; ++j) {
      if (prefers(i, j) && other.prefers(j, i)) return std::pair{i, j};
    }
  }
  return std::nullopt;
}

util::Bytes Promise::encode() const {
  util::ByteWriter w;
  w.u32(num_classes_);
  // Pack the closure matrix as bits.
  std::uint8_t acc = 0;
  int nbits = 0;
  for (bool b : prefers_) {
    acc = static_cast<std::uint8_t>((acc << 1) | (b ? 1 : 0));
    if (++nbits == 8) {
      w.u8(acc);
      acc = 0;
      nbits = 0;
    }
  }
  if (nbits > 0) w.u8(static_cast<std::uint8_t>(acc << (8 - nbits)));
  return w.take();
}

Promise Promise::decode(util::ByteSpan data) {
  util::ByteReader r(data);
  std::uint32_t k = r.u32();
  if (k == 0 || k > 4096) throw util::DecodeError("Promise: bad class count");
  const std::size_t total = static_cast<std::size_t>(k) * k;
  // The whole closure matrix must be present before the k*k-bit matrix is
  // allocated; otherwise a 4-byte header commands a ~2 MB allocation.
  if (r.remaining() < (total + 7) / 8) throw util::DecodeError("Promise: truncated matrix");
  Promise p(k);
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (i % 8 == 0) acc = r.u8();
    p.prefers_[i] = (acc >> (7 - i % 8)) & 1;
  }
  // Unused padding bits in the final byte must be zero, or two distinct
  // byte strings would decode to the same promise (and re-encode to a
  // different digest than the one that was signed).
  if (total % 8 != 0 && (acc & ((1u << (8 - total % 8)) - 1)) != 0) {
    throw util::DecodeError("Promise: non-zero padding bits");
  }
  r.expect_end();
  // Sanity: a decoded promise must still be a strict order (no cycles,
  // irreflexive).  Reject tampered encodings.
  for (ClassId a = 0; a < k; ++a) {
    if (p.prefers(a, a)) throw util::DecodeError("Promise: reflexive preference");
    for (ClassId b = 0; b < k; ++b) {
      if (p.prefers(a, b) && p.prefers(b, a)) throw util::DecodeError("Promise: cycle");
      for (ClassId c = 0; c < k; ++c) {
        if (p.prefers(a, b) && p.prefers(b, c) && !p.prefers(a, c)) {
          throw util::DecodeError("Promise: not transitively closed");
        }
      }
    }
  }
  return p;
}

Promise Promise::total_order(std::uint32_t num_classes) {
  Promise p(num_classes);
  for (ClassId better = 0; better < num_classes; ++better) {
    for (ClassId worse = better + 1; worse < num_classes; ++worse) {
      p.add_preference(better, worse);
    }
  }
  return p;
}

Promise Promise::prefer_customer() {
  Promise p(2);
  p.add_preference(0, 1);
  return p;
}

// ----------------------------------------------------------- classifiers

PathLengthClassifier::PathLengthClassifier(std::uint32_t num_classes)
    : num_classes_(num_classes) {
  if (num_classes < 2) {
    throw std::invalid_argument("PathLengthClassifier: need >= 2 classes (one must hold the null route)");
  }
}

ClassId PathLengthClassifier::classify(const std::optional<bgp::Route>& route) const {
  if (!route) return null_class();
  std::size_t len = route->path_length();
  if (len == 0) return 0;  // locally originated: the best tier
  std::size_t tier = len - 1;
  return static_cast<ClassId>(std::min<std::size_t>(tier, num_classes_ - 2));
}

Promise PathLengthClassifier::shortest_path_promise() const {
  // Classes 0..k-2 by increasing length, class k-1 = null route, totally
  // ordered: shorter beats longer beats no-route.
  return Promise::total_order(num_classes_);
}

ClassId RelationshipClassifier::classify(const std::optional<bgp::Route>& route) const {
  if (!route) return kNull;
  if (route->local_pref >= bgp::kLocalPrefCustomer) return kCustomer;
  if (route->local_pref >= bgp::kLocalPrefPeer) return kPeer;
  return kProvider;
}

Promise RelationshipClassifier::gao_rexford_promise() {
  Promise p(4);
  p.add_preference(kCustomer, kPeer);
  p.add_preference(kPeer, kProvider);
  p.add_preference(kProvider, kNull);
  return p;
}

ClassId SelectiveExportClassifier::classify(const std::optional<bgp::Route>& route) const {
  if (!route) return kNull;
  return route->has_community(tag_) ? kNoExport : kExportable;
}

Promise SelectiveExportClassifier::no_export_promise() {
  // Exportable > ⊥ > tagged: the tagged class must never win (§3.2
  // "the null route should be placed, in a class of its own, between the
  // two main classes").
  Promise p(3);
  p.add_preference(SelectiveExportClassifier::kExportable, SelectiveExportClassifier::kNull);
  p.add_preference(SelectiveExportClassifier::kNull, SelectiveExportClassifier::kNoExport);
  return p;
}

}  // namespace spider::core

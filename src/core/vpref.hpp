// VPref: collaborative verification of promises about private choices
// (paper §4).  Single-prefix, single-round version; the multi-prefix
// version used by SPIDeR swaps the flat commitment for the MTT.
//
// Roles (Figure 3): producers P_i each advertise one route (possibly ⊥) to
// the elector E; E picks e ∈ {⊥, r_1..r_n} and offers each consumer C_j
// either e or ⊥.  E has promised each consumer a partial order over the
// public indifference classes.  The protocol lets every neighbor check its
// own lemma of "E kept its promises" without learning anything beyond its
// own BGP view:
//   commitment phase  — announcements, acks, bit commitment, offers;
//   verification phase — bit proofs, cross-checked commitments, challenges.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/commitment.hpp"
#include "core/promise.hpp"
#include "crypto/rsa.hpp"

namespace spider::core {

using PartyId = std::uint32_t;

// ---------------------------------------------------------------- wiring

/// Public keys of every participant (Assumption 5: "the topology and the
/// public keys are known to all ASes").
class KeyRegistry {
 public:
  void add(PartyId id, std::unique_ptr<crypto::Verifier> verifier);
  bool verify(PartyId id, ByteSpan message, ByteSpan signature) const;
  bool known(PartyId id) const { return verifiers_.count(id) != 0; }

 private:
  std::map<PartyId, std::unique_ptr<crypto::Verifier>> verifiers_;
};

/// A signed protocol message: payload bytes plus the signer's signature.
struct SignedEnvelope {
  PartyId signer = 0;
  Bytes payload;
  Bytes signature;

  /// Digest over signer + payload + signature; used in ACKs and logs.
  Digest20 digest() const;

  Bytes encode() const;
  static SignedEnvelope decode(ByteSpan data);
  bool operator==(const SignedEnvelope&) const = default;
};

SignedEnvelope sign_envelope(PartyId signer, const crypto::Signer& key, ByteSpan payload);
bool check_envelope(const SignedEnvelope& env, const KeyRegistry& keys);

// -------------------------------------------------------------- payloads

enum class MsgType : std::uint8_t {
  kAnnounce = 1,
  kAck = 2,
  kCommit = 3,
  kOffer = 4,
  kBitProof = 5,
  kPromise = 6,
};

/// σ_P(r): producer P advertises route r (or ⊥) to the elector.
struct AnnouncePayload {
  PartyId producer = 0;
  PartyId elector = 0;
  std::uint64_t round = 0;
  std::optional<bgp::Route> route;  // nullopt = the null route ⊥

  Bytes encode() const;
  static AnnouncePayload decode(ByteSpan data);
};

/// σ_E(σ_P(r)): elector acknowledges the producer's announcement.
struct AckPayload {
  PartyId elector = 0;
  std::uint64_t round = 0;
  Digest20 announce_digest{};  // digest of the announce envelope

  Bytes encode() const;
  static AckPayload decode(ByteSpan data);
};

/// σ_E(h): the commitment to the input bits.
struct CommitPayload {
  PartyId elector = 0;
  std::uint64_t round = 0;
  std::uint32_t num_bits = 0;
  Digest20 root{};

  Bytes encode() const;
  static CommitPayload decode(ByteSpan data);
};

/// Step 6: σ_E(C_j, ⊥) or σ_E(C_j, σ_P(r_i), ...): the route offered to a
/// consumer, carrying the producer's signed announcement when non-null so
/// the consumer can check the route was not fabricated (as in S-BGP).
struct OfferPayload {
  PartyId elector = 0;
  PartyId consumer = 0;
  std::uint64_t round = 0;
  std::optional<bgp::Route> route;
  /// Present iff route is present: the producer's announce envelope.
  std::optional<SignedEnvelope> producer_announce;

  Bytes encode() const;
  static OfferPayload decode(ByteSpan data);
};

/// A signed bit proof for one indifference class.
struct BitProofPayload {
  PartyId elector = 0;
  std::uint64_t round = 0;
  FlatBitProof proof;

  Bytes encode() const;
  static BitProofPayload decode(ByteSpan data);
};

/// σ_E(≤_j): the signed representation of the promise made to a consumer
/// (Assumption 6), exchanged out of band (e.g. with the peering agreement).
struct PromisePayload {
  PartyId elector = 0;
  PartyId consumer = 0;
  Promise promise{1};

  Bytes encode() const;
  static PromisePayload decode(ByteSpan data);
};

// -------------------------------------------------------------- failures

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kBadSignature,        // message signature failed
  kMalformedMessage,    // undecodable / wrong fields
  kMissingMessage,      // expected message never arrived (raises alarm)
  kInconsistentCommit,  // two different commitments for the same round
  kMissingBitProof,     // elector refused to prove a due bit
  kInvalidBitProof,     // proof does not open the commitment
  kOmittedInput,        // producer's class proven 0 despite its input
  kBrokenPromise,       // a class better than the offer proven 1
};

std::string fault_kind_name(FaultKind kind);

/// A local detection, possibly carrying enough material to convince others.
struct Detection {
  FaultKind kind = FaultKind::kNone;
  PartyId accused = 0;
  std::string detail;
};

// ------------------------------------------------------------ challenges

/// PROOFCHALLENGE from a producer (paper §4.5): "the elector acknowledged
/// my input in class `claimed_class`, yet cannot prove that bit is 1."
struct ProducerChallenge {
  SignedEnvelope announce;  // producer-signed
  SignedEnvelope ack;       // elector-signed
  /// The (invalid or bit=0) proof received, when one was received at all.
  std::optional<SignedEnvelope> received_proof;

  Bytes encode() const;
  static ProducerChallenge decode(ByteSpan data);
};

/// PROOFCHALLENGE from a consumer: "here is what the elector offered me and
/// the promise it signed; the bit proofs show (or fail to show) a breach."
struct ConsumerChallenge {
  SignedEnvelope offer;           // elector-signed OfferPayload
  SignedEnvelope signed_promise;  // elector-signed PromisePayload
  /// Proofs received, keyed by class; classes due but absent are accusations
  /// of refusal.
  std::vector<SignedEnvelope> received_proofs;

  Bytes encode() const;
  static ConsumerChallenge decode(ByteSpan data);
};

/// INVALIDCOMMIT: two conflicting signed commitments are a self-contained
/// proof of misbehavior.  Returns true when the evidence is valid.
bool validate_inconsistent_commit(const SignedEnvelope& a, const SignedEnvelope& b,
                                  const KeyRegistry& keys);

enum class Verdict : std::uint8_t {
  kElectorGuilty,
  kChallengeRejected,  // challenge malformed or elector exonerated
};

/// Third-party arbitration of a producer challenge.  `elector_response` is
/// the elector's answer to the re-challenge (a signed BitProofPayload), or
/// nullopt if the elector refused.
Verdict judge_producer_challenge(const ProducerChallenge& challenge,
                                 const SignedEnvelope& commitment,
                                 const std::optional<SignedEnvelope>& elector_response,
                                 const KeyRegistry& keys, const Classifier& classifier);

/// Third-party arbitration of a consumer challenge. `elector_responses`
/// holds the elector's proof per class (absent entries = refusal).
Verdict judge_consumer_challenge(const ConsumerChallenge& challenge,
                                 const SignedEnvelope& commitment,
                                 const std::map<ClassId, SignedEnvelope>& elector_responses,
                                 const KeyRegistry& keys, const Classifier& classifier);

// ---------------------------------------------------------------- elector

/// The elector role.  Honest behavior throughout; the Faults knobs switch
/// on the misbehaviors studied in §7.4 plus a few more for testing.
class Elector {
 public:
  struct Faults {
    /// "Overaggressive filter": silently ignore these producers' inputs.
    std::set<PartyId> ignore_producers;
    /// "Wrongly exporting": offer e to these consumers even when the
    /// promise demands ⊥.
    std::set<PartyId> force_export;
    /// "Tampered bit proof": flip the revealed bit for these classes.
    std::set<ClassId> tamper_proof_classes;
    /// Send a different commitment to these parties (inconsistent commit).
    std::set<PartyId> equivocate_to;
    /// Refuse bit proofs for these classes.
    std::set<ClassId> refuse_proof_classes;
  };

  /// `true_preference` is the elector's private total order: a permutation
  /// of class ids, most preferred first.  It must be a linear extension of
  /// every promise for the elector to be correct (tests construct both
  /// consistent and inconsistent ones on purpose).
  Elector(PartyId id, std::uint64_t round, const crypto::Signer& signer,
          const Classifier& classifier, std::vector<ClassId> true_preference);

  /// Registers the promise made to a consumer; returns σ_E(≤_j).
  SignedEnvelope promise_to(PartyId consumer, Promise promise);

  /// Step 1-2: receive a producer's announcement, return the ACK.
  /// Throws std::invalid_argument on signature/shape violations (a real
  /// elector would raise an alarm).
  SignedEnvelope receive_announcement(const SignedEnvelope& announce, const KeyRegistry& keys);

  /// Step 3-5: choose e, compute the input bits, build the commitment.
  /// Returns the commitment envelope for `recipient` (faulty electors may
  /// equivocate, so the recipient matters).
  void decide_and_commit(const crypto::Seed& seed);
  SignedEnvelope commitment_for(PartyId recipient) const;

  /// Step 6: the signed offer for a consumer.
  SignedEnvelope offer_for(PartyId consumer) const;

  /// Verification phase: signed bit proof for one class, or nullopt when
  /// the (faulty) elector refuses.
  std::optional<SignedEnvelope> bit_proof_for(ClassId cls) const;

  /// The chosen route e (test introspection).
  const std::optional<bgp::Route>& chosen() const { return chosen_; }
  ClassId chosen_class() const;
  const std::vector<bool>& bits() const { return bits_; }

  Faults& faults() { return faults_; }

 private:
  std::optional<bgp::Route> honest_choice() const;

  PartyId id_;
  std::uint64_t round_;
  const crypto::Signer& signer_;
  const Classifier& classifier_;
  std::vector<ClassId> true_preference_;
  std::map<PartyId, Promise> promises_;
  std::map<PartyId, SignedEnvelope> inputs_;  // producer -> announce envelope
  std::map<PartyId, std::optional<bgp::Route>> routes_;
  std::optional<bgp::Route> chosen_;
  std::optional<PartyId> chosen_producer_;
  std::vector<bool> bits_;
  std::optional<FlatCommitment> commitment_;
  std::optional<FlatCommitment> equivocal_commitment_;  // for equivocate_to
  Faults faults_;
};

// --------------------------------------------------------------- producer

class Producer {
 public:
  Producer(PartyId id, PartyId elector, std::uint64_t round, const crypto::Signer& signer,
           const Classifier& classifier);

  /// Step 1: sign and return the announcement for `route` (⊥ = nullopt).
  SignedEnvelope announce(std::optional<bgp::Route> route);

  /// Step 2: validate the elector's ACK.
  std::optional<Detection> receive_ack(const std::optional<SignedEnvelope>& ack,
                                       const KeyRegistry& keys);

  /// Step 5: record the commitment received from the elector.
  std::optional<Detection> receive_commitment(const std::optional<SignedEnvelope>& commit,
                                              const KeyRegistry& keys);

  /// Verification: check the bit proof for this producer's class.
  std::optional<Detection> check_bit_proof(const std::optional<SignedEnvelope>& proof,
                                           const KeyRegistry& keys);

  /// After a detection, the challenge that convinces third parties.
  ProducerChallenge make_challenge() const;

  const std::optional<SignedEnvelope>& commitment() const { return commitment_; }
  std::optional<ClassId> my_class() const { return my_class_; }

 private:
  PartyId id_;
  PartyId elector_;
  std::uint64_t round_;
  const crypto::Signer& signer_;
  const Classifier& classifier_;
  std::optional<SignedEnvelope> my_announce_;
  std::optional<SignedEnvelope> ack_;
  std::optional<SignedEnvelope> commitment_;
  std::optional<SignedEnvelope> received_proof_;
  std::optional<ClassId> my_class_;  // nullopt when we sent ⊥
};

// --------------------------------------------------------------- consumer

class Consumer {
 public:
  Consumer(PartyId id, PartyId elector, std::uint64_t round, const Classifier& classifier);

  /// Out-of-band: the signed promise from the elector (Assumption 6).
  std::optional<Detection> receive_promise(const SignedEnvelope& signed_promise,
                                           const KeyRegistry& keys);

  std::optional<Detection> receive_commitment(const std::optional<SignedEnvelope>& commit,
                                              const KeyRegistry& keys);

  /// Step 6: validate the offer (signatures, embedded producer announce).
  std::optional<Detection> receive_offer(const std::optional<SignedEnvelope>& offer,
                                         const KeyRegistry& keys);

  /// Classes this consumer is due proofs for: all classes strictly better
  /// (under its promise) than the class of the offered route.
  std::vector<ClassId> due_classes() const;

  /// Verification: check all due proofs; `proofs` maps class -> envelope.
  std::optional<Detection> check_bit_proofs(
      const std::map<ClassId, SignedEnvelope>& proofs, const KeyRegistry& keys);

  ConsumerChallenge make_challenge() const;

  const std::optional<SignedEnvelope>& commitment() const { return commitment_; }
  const std::optional<bgp::Route>& offered_route() const { return offered_route_; }

 private:
  PartyId id_;
  PartyId elector_;
  std::uint64_t round_;
  const Classifier& classifier_;
  std::optional<Promise> promise_;
  std::optional<SignedEnvelope> signed_promise_;
  std::optional<SignedEnvelope> offer_;
  std::optional<bgp::Route> offered_route_;
  std::optional<SignedEnvelope> commitment_;
  std::vector<SignedEnvelope> received_proofs_;
};

/// VERIFY-phase cross-check (paper §4.5 first step): every party reveals
/// the commitment it holds; any two that differ are an INVALIDCOMMIT proof.
/// Returns the offending pair when found.
std::optional<std::pair<SignedEnvelope, SignedEnvelope>> cross_check_commitments(
    const std::vector<SignedEnvelope>& commitments, const KeyRegistry& keys);

}  // namespace spider::core
